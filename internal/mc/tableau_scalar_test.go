package mc

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/logic"
)

// The scalar tableau (ltl.go) is the reference the packed product
// (tableau_packed.go) is pinned against, and it remains the only engine for
// formulas outside the packed envelope (closure > 64, more than 10 temporal
// operators, or an oversized assignment table).  The tests here drive the
// scalar product directly — every current end-to-end formula fits the packed
// envelope, so without them the fallback would be dead code in the suite.

// tableauBothEngines atomizes the path formula p, builds its tableau and
// returns the satisfaction sets computed by the scalar and packed products.
func tableauBothEngines(t *testing.T, c *Checker, p logic.Formula) (scalar, packed []bool) {
	t.Helper()
	atomized, placeholders, err := c.atomizePathFormula(logic.Desugar(p))
	if err != nil {
		t.Fatalf("atomizePathFormula(%s): %v", p, err)
	}
	tb, err := newTableau(atomized)
	if err != nil {
		t.Fatalf("newTableau(%s): %v", p, err)
	}
	packed, ok, err := c.runTableauPacked(tb, placeholders)
	if err != nil {
		t.Fatalf("runTableauPacked(%s): %v", p, err)
	}
	if !ok {
		t.Fatalf("runTableauPacked(%s) bowed out; pick a formula inside the packed envelope", p)
	}
	scalar, err = c.runTableau(tb, placeholders)
	if err != nil {
		t.Fatalf("runTableau(%s): %v", p, err)
	}
	return scalar, packed
}

// TestScalarTableauMatchesPacked: on randomized structures the scalar product
// agrees with the packed product state-for-state, across untils, nexts,
// negations, placeholders (embedded E subformulas), instantiated indexed
// atoms and "exactly one" atoms.
func TestScalarTableauMatchesPacked(t *testing.T) {
	p, q, rr := logic.Prop("p"), logic.Prop("q"), logic.Prop("r")
	formulas := []logic.Formula{
		logic.Until(p, q),
		logic.Conj(logic.Until(p, q), logic.Next(rr)),
		logic.Always(logic.Disj(p, q)),
		logic.Conj(logic.Neg(logic.Until(p, q)), logic.Eventually(rr)),
		logic.Disj(
			logic.Until(p, logic.Until(q, rr)),
			logic.Next(logic.Conj(p, logic.EG(q))),
		),
		logic.Until(logic.InstProp("t", 0), logic.Disj(q, logic.ExactlyOne("t"))),
	}
	r := rand.New(rand.NewSource(515151))
	for iter := 0; iter < 8; iter++ {
		m := randomStructure(r, 2+r.Intn(30))
		for _, workers := range vectorWorkerCounts {
			c := New(m).SetWorkers(workers)
			for _, f := range formulas {
				scalar, packed := tableauBothEngines(t, c, f)
				for s := range scalar {
					if scalar[s] != packed[s] {
						t.Fatalf("iter %d workers %d formula %s: scalar and packed disagree at state %d (scalar %v, packed %v)",
							iter, workers, f, s, scalar[s], packed[s])
					}
				}
			}
		}
	}
}

// nestEventually wraps f in n F operators; each desugars to an until, so the
// nesting depth controls the tableau's temporal-operator count while the
// meaning stays F f.
func nestEventually(n int, f logic.Formula) logic.Formula {
	for i := 0; i < n; i++ {
		f = logic.Eventually(f)
	}
	return f
}

// TestScalarFallbackWideFormula: a path formula with more than 10 temporal
// operators is outside the packed envelope, so Holds routes it through the
// scalar tableau end to end.  F^11 q and (X p) ∨ F^10 q collapse to EF q and
// EX p ∨ EF q respectively, giving CTL oracles for the answer.
func TestScalarFallbackWideFormula(t *testing.T) {
	p, q := logic.Prop("p"), logic.Prop("q")
	r := rand.New(rand.NewSource(525252))
	m := randomStructure(r, 40)
	c := New(m)
	oracle := New(m)
	efq, err := oracle.satState(logic.EF(q))
	if err != nil {
		t.Fatal(err)
	}
	exp, err := oracle.satState(logic.EX(p))
	if err != nil {
		t.Fatal(err)
	}

	wide, err := c.satState(logic.ExistsPath(nestEventually(11, q)))
	if err != nil {
		t.Fatalf("E F^11 q: %v", err)
	}
	for s := range wide {
		if wide[s] != efq[s] {
			t.Fatalf("E F^11 q disagrees with EF q at state %d (scalar %v, oracle %v)", s, wide[s], efq[s])
		}
	}

	mixed, err := c.satState(logic.ExistsPath(logic.Disj(logic.Next(p), nestEventually(10, q))))
	if err != nil {
		t.Fatalf("E ((X p) | F^10 q): %v", err)
	}
	for s := range mixed {
		want := exp[s] || efq[s]
		if mixed[s] != want {
			t.Fatalf("E ((X p) | F^10 q) disagrees with EX p ∨ EF q at state %d (scalar %v, oracle %v)", s, mixed[s], want)
		}
	}
}

// TestScalarTableauOperatorLimit: past 20 temporal operators the scalar
// tableau refuses rather than enumerating 2^21 assignments per state.
func TestScalarTableauOperatorLimit(t *testing.T) {
	r := rand.New(rand.NewSource(535353))
	c := New(randomStructure(r, 4))
	_, err := c.satState(logic.ExistsPath(nestEventually(21, logic.Prop("q"))))
	if err == nil || !strings.Contains(err.Error(), "tableau limit") {
		t.Fatalf("E F^21 q: err = %v, want tableau limit error", err)
	}
}

// TestSortedPlaceholderNames: atomization numbers placeholders in discovery
// order and sortedPlaceholderNames returns them sorted, so both engines see
// the same deterministic placeholder vocabulary.
func TestSortedPlaceholderNames(t *testing.T) {
	r := rand.New(rand.NewSource(545454))
	c := New(randomStructure(r, 10))
	f := logic.Disj(
		logic.Until(logic.EG(logic.Prop("p")), logic.Prop("q")),
		logic.Next(logic.EF(logic.Prop("r"))),
	)
	_, placeholders, err := c.atomizePathFormula(logic.Desugar(f))
	if err != nil {
		t.Fatal(err)
	}
	names := sortedPlaceholderNames(placeholders)
	if len(names) != 2 || names[0] != placeholderPrefix+"0" || names[1] != placeholderPrefix+"1" {
		t.Fatalf("sortedPlaceholderNames = %v, want [%s0 %s1]", names, placeholderPrefix, placeholderPrefix)
	}
	for _, name := range names {
		if got := len(placeholders[name]); got != c.m.NumStates() {
			t.Fatalf("placeholder %s has %d entries, want %d", name, got, c.m.NumStates())
		}
	}
}
