package mc

import (
	"sync"
	"sync/atomic"
)

// parallelChunks fans the index range [0, n) out across the checker's worker
// budget in contiguous chunks of at most grain indices.  init is called once
// with the resolved worker count before any work starts, so callers can size
// per-worker accumulators; fn is then called with (worker, lo, hi) for each
// claimed chunk.  Workers claim chunks from an atomic counter and poll the
// query context per claim, so cancellation is observed within one chunk.
//
// fn must confine its writes to per-worker state (or disjoint output ranges):
// the checker's cache and Stats are not synchronised and must not be touched
// from inside fn.  With a worker budget of one — or when one chunk covers the
// range — everything runs inline on the calling goroutine.
func (c *Checker) parallelChunks(n, grain int, fn func(worker, lo, hi int), init func(workers int)) error {
	if n <= 0 {
		init(1)
		return c.cancelled()
	}
	chunks := (n + grain - 1) / grain
	workers := c.workers
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		init(1)
		if err := c.cancelled(); err != nil {
			return err
		}
		fn(0, 0, n)
		return c.cancelled()
	}
	init(workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				if c.cancelled() != nil {
					return
				}
				k := int(next.Add(1)) - 1
				if k >= chunks {
					return
				}
				lo := k * grain
				hi := lo + grain
				if hi > n {
					hi = n
				}
				fn(worker, lo, hi)
			}
		}(w)
	}
	wg.Wait()
	return c.cancelled()
}
