package mc

import (
	"repro/internal/graph"
	"repro/internal/kripke"
)

// This file implements the CTL labelling algorithms (Clarke, Emerson,
// Sistla 1986) on satisfaction sets represented as []bool indexed by state:
//
//	EX f     : states with a successor satisfying f
//	E[f U g] : least fixpoint, computed backwards from the g states
//	EG f     : states from which some infinite path stays in f forever,
//	           computed from the nontrivial SCCs of the f-restricted graph
//
// The universal operators are obtained by duality in the checker.
//
// Two implementations coexist.  The *Scalar functions below walk states one
// at a time and materialise the f-restricted graph for EG; they are the
// executable reference the metamorphic tests in vector_test.go pin the
// engine against.  The checker itself runs the word-at-a-time versions in
// vector.go, which sweep predecessor words over BitSet frontiers and find
// the EG seed components with an implicit Tarjan pass; the two families
// assign identical satisfaction sets and identical Stats counters.

// satEXScalar returns the states that have at least one successor in f.
func (c *Checker) satEXScalar(f []bool) []bool {
	n := c.m.NumStates()
	sat := make([]bool, n)
	for s := 0; s < n; s++ {
		for _, t := range c.m.Succ(kripke.State(s)) {
			if f[t] {
				sat[s] = true
				break
			}
		}
	}
	return sat
}

// satEUScalar returns the states satisfying E[f U g]: the least fixpoint of
// Z = g ∪ (f ∩ EX Z), computed with a backwards worklist over predecessors.
func (c *Checker) satEUScalar(f, g []bool) []bool {
	n := c.m.NumStates()
	sat := make([]bool, n)
	worklist := make([]kripke.State, 0, n)
	for s := 0; s < n; s++ {
		if g[s] {
			sat[s] = true
			worklist = append(worklist, kripke.State(s))
		}
	}
	for len(worklist) > 0 {
		c.stats.FixpointIterations++
		t := worklist[len(worklist)-1]
		worklist = worklist[:len(worklist)-1]
		for _, s := range c.m.Pred(t) {
			if !sat[s] && f[s] {
				sat[s] = true
				worklist = append(worklist, s)
			}
		}
	}
	return sat
}

// satEGScalar returns the states satisfying EG f: the states in f from which
// some infinite path remains in f forever.  The algorithm restricts the
// structure to the f states, finds the nontrivial strongly connected
// components of the restriction, and computes backwards reachability (within
// f) to them.
func (c *Checker) satEGScalar(f []bool) []bool {
	n := c.m.NumStates()
	// Build the f-restricted graph (same vertex numbering; edges only
	// between f states).
	g := graph.New(n)
	for s := 0; s < n; s++ {
		if !f[s] {
			continue
		}
		for _, t := range c.m.Succ(kripke.State(s)) {
			if f[t] {
				g.AddEdge(s, int(t))
			}
		}
	}
	scc := g.SCC()
	// Seed: every f state inside a nontrivial SCC of the restriction.
	seed := make([]bool, n)
	for comp := 0; comp < scc.NumComponents(); comp++ {
		if scc.IsTrivial(g, comp) {
			continue
		}
		for _, v := range scc.Components[comp] {
			if f[v] {
				seed[v] = true
			}
		}
	}
	// Backwards reachability within f to the seed.
	sat := make([]bool, n)
	var worklist []kripke.State
	for s := 0; s < n; s++ {
		if seed[s] {
			sat[s] = true
			worklist = append(worklist, kripke.State(s))
		}
	}
	for len(worklist) > 0 {
		c.stats.FixpointIterations++
		t := worklist[len(worklist)-1]
		worklist = worklist[:len(worklist)-1]
		for _, s := range c.m.Pred(t) {
			if !sat[s] && f[s] {
				sat[s] = true
				worklist = append(worklist, s)
			}
		}
	}
	return sat
}
