package mc

import (
	"fmt"
	"math/rand"
	"testing"
)

// Metamorphic battery for the word-at-a-time CTL engine (vector.go): on
// randomized total structures — including state counts straddling the 64-bit
// word boundary — and on degenerate satisfaction sets (empty, full), the
// vector EX/EU/EG must return exactly the satisfaction sets of the scalar
// reference implementations in ctl.go, and the fixpoint engines must
// accumulate exactly the same Stats counters.  The battery runs at worker
// budgets 0 and 4; the large-structure cases push the frontier past
// gatherParallelWords so the chunked parallel gather is exercised for real.

// vectorWorkerCounts are the worker budgets every equivalence case runs at.
var vectorWorkerCounts = []int{0, 4}

// boolSetCases yields the satisfaction-set shapes fed to the operators: a
// random set, the empty set and the full set (the two degenerate shapes hit
// the all-zero-word and all-one-word paths of the frontier sweeps).
func boolSetCases(r *rand.Rand, n int) map[string][]bool {
	random := make([]bool, n)
	for i := range random {
		random[i] = r.Intn(3) > 0
	}
	empty := make([]bool, n)
	full := make([]bool, n)
	for i := range full {
		full[i] = true
	}
	return map[string][]bool{"random": random, "empty": empty, "full": full}
}

// vectorSizes mixes small random sizes with the word-boundary counts 63, 64
// and 65, so single-word, exactly-one-word and just-past-one-word layouts
// all appear.
func vectorSizes(r *rand.Rand, iter int) int {
	boundary := []int{63, 64, 65}
	if iter%4 == 3 {
		return boundary[iter/4%len(boundary)]
	}
	return 2 + r.Intn(40)
}

func assertSameSat(t *testing.T, label string, got, want []bool) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: state %d: vector=%v scalar=%v", label, i, got[i], want[i])
		}
	}
}

func TestVectorEXMatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(860701))
	iters := 60
	if testing.Short() {
		iters = 15
	}
	for iter := 0; iter < iters; iter++ {
		m := randomStructure(r, vectorSizes(r, iter))
		for name, f := range boolSetCases(r, m.NumStates()) {
			want := New(m).satEXScalar(f)
			for _, w := range vectorWorkerCounts {
				got, err := New(m).SetWorkers(w).satEX(f)
				if err != nil {
					t.Fatalf("iter=%d %s workers=%d: satEX: %v", iter, name, w, err)
				}
				assertSameSat(t, fmt.Sprintf("EX iter=%d %s workers=%d", iter, name, w), got, want)
			}
		}
	}
}

func TestVectorEUMatchesScalarWithStats(t *testing.T) {
	r := rand.New(rand.NewSource(860702))
	iters := 60
	if testing.Short() {
		iters = 15
	}
	for iter := 0; iter < iters; iter++ {
		m := randomStructure(r, vectorSizes(r, iter))
		sets := boolSetCases(r, m.NumStates())
		for fname, f := range sets {
			for gname, g := range sets {
				cs := New(m)
				want := cs.satEUScalar(f, g)
				for _, w := range vectorWorkerCounts {
					cv := New(m).SetWorkers(w)
					got, err := cv.satEU(f, g)
					if err != nil {
						t.Fatalf("iter=%d f=%s g=%s workers=%d: satEU: %v", iter, fname, gname, w, err)
					}
					label := fmt.Sprintf("EU iter=%d f=%s g=%s workers=%d", iter, fname, gname, w)
					assertSameSat(t, label, got, want)
					if cv.stats.FixpointIterations != cs.stats.FixpointIterations {
						t.Fatalf("%s: FixpointIterations: vector=%d scalar=%d",
							label, cv.stats.FixpointIterations, cs.stats.FixpointIterations)
					}
				}
			}
		}
	}
}

func TestVectorEGMatchesScalarWithStats(t *testing.T) {
	r := rand.New(rand.NewSource(860703))
	iters := 60
	if testing.Short() {
		iters = 15
	}
	for iter := 0; iter < iters; iter++ {
		m := randomStructure(r, vectorSizes(r, iter))
		for name, f := range boolSetCases(r, m.NumStates()) {
			cs := New(m)
			want := cs.satEGScalar(f)
			for _, w := range vectorWorkerCounts {
				cv := New(m).SetWorkers(w)
				got, err := cv.satEG(f)
				if err != nil {
					t.Fatalf("iter=%d %s workers=%d: satEG: %v", iter, name, w, err)
				}
				label := fmt.Sprintf("EG iter=%d %s workers=%d", iter, name, w)
				assertSameSat(t, label, got, want)
				if cv.stats.FixpointIterations != cs.stats.FixpointIterations {
					t.Fatalf("%s: FixpointIterations: vector=%d scalar=%d",
						label, cv.stats.FixpointIterations, cs.stats.FixpointIterations)
				}
			}
		}
	}
}

// TestVectorParallelGatherOnLargeFrontier drives the frontier past
// gatherParallelWords (64 words = 4096 states), so the workers>1 runs use
// the chunked parallel predecessor gather rather than the inline sweep, and
// still must reproduce the scalar sets and counters exactly.
func TestVectorParallelGatherOnLargeFrontier(t *testing.T) {
	if testing.Short() {
		t.Skip("large-structure case")
	}
	r := rand.New(rand.NewSource(860704))
	const n = 5000
	m := randomStructure(r, n)
	sets := boolSetCases(r, n)
	f, g := sets["random"], sets["full"]

	cs := New(m)
	wantEU := cs.satEUScalar(f, g)
	wantEG := cs.satEGScalar(f)
	for _, w := range vectorWorkerCounts {
		cv := New(m).SetWorkers(w)
		gotEU, err := cv.satEU(f, g)
		if err != nil {
			t.Fatalf("workers=%d: satEU: %v", w, err)
		}
		assertSameSat(t, fmt.Sprintf("large EU workers=%d", w), gotEU, wantEU)
		gotEG, err := cv.satEG(f)
		if err != nil {
			t.Fatalf("workers=%d: satEG: %v", w, err)
		}
		assertSameSat(t, fmt.Sprintf("large EG workers=%d", w), gotEG, wantEG)
		if cv.stats.FixpointIterations != cs.stats.FixpointIterations {
			t.Fatalf("workers=%d: FixpointIterations: vector=%d scalar=%d",
				w, cv.stats.FixpointIterations, cs.stats.FixpointIterations)
		}
	}
}
