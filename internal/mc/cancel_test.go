package mc

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/logic"
)

// Cancellation battery for the checker, mirroring explore/cancel_test.go and
// bisim/cancel_test.go: an already-cancelled context stops evaluation before
// any work, a cancellation landing mid-query surfaces as the context's error
// without leaking pool goroutines (parallelChunks always joins its workers
// before returning), and an expired deadline is reported as such.  Every
// case runs with a worker budget so the chunked frontier gather's pool is
// the thing being cancelled.

// settleGoroutines waits (bounded) for the goroutine count to drop back to
// the baseline, tolerating runtime bookkeeping goroutines.
func settleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.Gosched()
		now := runtime.NumGoroutine()
		if now <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s", baseline, now, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// cancelFixture returns a structure big enough that a fixpoint query has a
// cancellation window, and a formula whose evaluation exercises EU and EG.
func cancelFixture(t testing.TB) (*Checker, logic.Formula) {
	t.Helper()
	r := rand.New(rand.NewSource(424242))
	m := randomStructure(r, 20000)
	return New(m).SetWorkers(4), logic.MustParse("E ((p | q) U (E (G (q | r))))")
}

// TestCheckerAlreadyCancelled: a context that is already cancelled stops the
// evaluation before it does any work.
func TestCheckerAlreadyCancelled(t *testing.T) {
	c, f := cancelFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Holds(ctx, f); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestCheckerCancelledMidway: cancelling while the query runs makes Holds
// return promptly with ctx.Err() and leaves no pool workers behind.
func TestCheckerCancelledMidway(t *testing.T) {
	c, f := cancelFixture(t)
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Holds(ctx, f)
		done <- err
	}()
	time.Sleep(500 * time.Microsecond)
	cancel()
	select {
	case err := <-done:
		// nil is possible if the query beat the cancellation; any non-nil
		// error must be the context's.
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled (or completion)", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Holds did not return promptly after cancellation")
	}
	settleGoroutines(t, baseline)
}

// TestCheckerDeadline: an expired deadline surfaces as DeadlineExceeded.
func TestCheckerDeadline(t *testing.T) {
	c, f := cancelFixture(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond) // let the deadline pass
	if _, err := c.Holds(ctx, f); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestTableauCancelledMidway: cancellation also lands inside the CTL* tableau
// product (the conjunction with true blocks the CTL fast path).
func TestTableauCancelledMidway(t *testing.T) {
	r := rand.New(rand.NewSource(434343))
	c := New(randomStructure(r, 4000)).SetWorkers(4)
	f := logic.MustParse("E (((p | q) U (q & r)) & true)")
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Holds(ctx, f)
		done <- err
	}()
	time.Sleep(500 * time.Microsecond)
	cancel()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled (or completion)", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("tableau query did not return promptly after cancellation")
	}
	settleGoroutines(t, baseline)
}
