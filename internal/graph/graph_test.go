package graph

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func TestReachable(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	seen := g.Reachable(0)
	want := []bool{true, true, true, false, false}
	for i := range want {
		if seen[i] != want[i] {
			t.Errorf("Reachable(0)[%d] = %v, want %v", i, seen[i], want[i])
		}
	}
	seen = g.Reachable(0, 3)
	if !seen[4] {
		t.Error("multi-source reachability should include 4")
	}
	seen = g.Reachable()
	for i, ok := range seen {
		if ok {
			t.Errorf("Reachable() should be empty, got vertex %d", i)
		}
	}
}

func TestBackwardReachable(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 3)
	back := g.BackwardReachable(2)
	want := []bool{true, true, true, false}
	for i := range want {
		if back[i] != want[i] {
			t.Errorf("BackwardReachable(2)[%d] = %v, want %v", i, back[i], want[i])
		}
	}
}

func TestTranspose(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	tr := g.Transpose()
	if len(tr.Succ(1)) != 1 || tr.Succ(1)[0] != 0 {
		t.Errorf("Transpose Succ(1) = %v", tr.Succ(1))
	}
	if len(tr.Succ(0)) != 0 {
		t.Errorf("Transpose Succ(0) = %v", tr.Succ(0))
	}
}

func TestSCCSimpleCycle(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	scc := g.SCC()
	if scc.NumComponents() != 2 {
		t.Fatalf("NumComponents = %d, want 2", scc.NumComponents())
	}
	if scc.Comp[0] != scc.Comp[1] || scc.Comp[1] != scc.Comp[2] {
		t.Error("vertices 0,1,2 should share a component")
	}
	if scc.Comp[3] == scc.Comp[0] {
		t.Error("vertex 3 should be in its own component")
	}
	// Reverse topological numbering: the sink component {3} must have a
	// smaller number than the cycle that reaches it.
	if scc.Comp[3] > scc.Comp[0] {
		t.Error("components should be numbered in reverse topological order")
	}
	cyc := scc.Comp[0]
	if scc.IsTrivial(g, cyc) {
		t.Error("the 3-cycle should not be trivial")
	}
	if !scc.IsTrivial(g, scc.Comp[3]) {
		t.Error("vertex 3 without self loop should be trivial")
	}
}

func TestSCCSelfLoop(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 0)
	g.AddEdge(0, 1)
	scc := g.SCC()
	if scc.IsTrivial(g, scc.Comp[0]) {
		t.Error("a vertex with a self loop is not trivial")
	}
	if !scc.IsTrivial(g, scc.Comp[1]) {
		t.Error("vertex 1 is trivial")
	}
}

func TestSCCAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for iter := 0; iter < 50; iter++ {
		n := 2 + r.Intn(8)
		g := New(n)
		edges := r.Intn(n * n)
		for e := 0; e < edges; e++ {
			g.AddEdge(r.Intn(n), r.Intn(n))
		}
		scc := g.SCC()
		// Brute force: u and v share a component iff each reaches the other.
		for u := 0; u < n; u++ {
			ru := g.Reachable(u)
			for v := 0; v < n; v++ {
				rv := g.Reachable(v)
				same := ru[v] && rv[u]
				if same != (scc.Comp[u] == scc.Comp[v]) {
					t.Fatalf("iter %d: SCC disagrees with brute force at (%d,%d)", iter, u, v)
				}
			}
		}
		// The component lists must partition the vertices.
		total := 0
		for _, comp := range scc.Components {
			total += len(comp)
		}
		if total != n {
			t.Fatalf("iter %d: components cover %d of %d vertices", iter, total, n)
		}
	}
}

func TestSCCLargeChain(t *testing.T) {
	// A long chain exercises the iterative (non-recursive) implementation.
	n := 200000
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	scc := g.SCC()
	if scc.NumComponents() != n {
		t.Fatalf("chain of %d vertices should have %d components, got %d", n, n, scc.NumComponents())
	}
}

func TestCondensation(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 2)
	g.AddEdge(3, 4)
	scc := g.SCC()
	dag := g.Condensation(scc)
	if dag.N() != 3 {
		t.Fatalf("condensation has %d vertices, want 3", dag.N())
	}
	// The DAG must be acyclic: every component's successors have strictly
	// smaller component numbers (reverse topological order).
	for u := 0; u < dag.N(); u++ {
		for _, v := range dag.Succ(u) {
			if v >= u {
				t.Errorf("condensation edge %d -> %d violates reverse topological numbering", u, v)
			}
		}
	}
	// Condensation without a precomputed SCC should agree.
	dag2 := g.Condensation(nil)
	if dag2.N() != dag.N() {
		t.Error("Condensation(nil) disagrees")
	}
}

func TestAddEdgePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AddEdge out of range should panic")
		}
	}()
	g := New(1)
	g.AddEdge(0, 5)
}

func TestFromAdjacency(t *testing.T) {
	adj := [][]int{{1}, {}}
	g := FromAdjacency(adj)
	if g.N() != 2 {
		t.Errorf("N = %d", g.N())
	}
	succ := g.Succ(0)
	sort.Ints(succ)
	if len(succ) != 1 || succ[0] != 1 {
		t.Errorf("Succ(0) = %v", succ)
	}
}

// TestTransposeThenAddEdge: a graph produced by Transpose has its CSR built
// directly; mutating it afterwards must keep every transposed edge.
func TestTransposeThenAddEdge(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	rev := g.Transpose()
	if got := fmt.Sprint(rev.Succ(1)); got != "[0]" {
		t.Fatalf("transposed Succ(1) = %s, want [0]", got)
	}
	rev.AddEdge(0, 2)
	if got := fmt.Sprint(rev.Succ(1)); got != "[0]" {
		t.Errorf("after AddEdge, transposed Succ(1) = %s, want [0] (transposed edges lost)", got)
	}
	if got := fmt.Sprint(rev.Succ(2)); got != "[1]" {
		t.Errorf("after AddEdge, transposed Succ(2) = %s, want [1] (transposed edges lost)", got)
	}
	if got := fmt.Sprint(rev.Succ(0)); got != "[2]" {
		t.Errorf("after AddEdge, Succ(0) = %s, want [2]", got)
	}
}
