// Package graph provides the small set of directed-graph algorithms the
// model checker and the correspondence engine are built on: depth-first
// reachability, Tarjan's strongly connected components, and the condensation
// (component DAG).  Graphs are represented as adjacency lists over dense
// integer vertices so callers can map Kripke or tableau states directly onto
// them.
package graph

import "fmt"

// Graph is a directed graph over the vertices 0..N-1.
type Graph struct {
	adj [][]int
}

// New returns an empty graph with n vertices.
func New(n int) *Graph {
	return &Graph{adj: make([][]int, n)}
}

// FromAdjacency wraps an existing adjacency list without copying it.  The
// caller must not modify adj afterwards.
func FromAdjacency(adj [][]int) *Graph { return &Graph{adj: adj} }

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// AddEdge adds the directed edge u -> v.  It panics if either endpoint is
// out of range, which always indicates a programming error in the caller.
func (g *Graph) AddEdge(u, v int) {
	if u < 0 || u >= len(g.adj) || v < 0 || v >= len(g.adj) {
		panic(fmt.Sprintf("graph: AddEdge(%d, %d) out of range [0, %d)", u, v, len(g.adj)))
	}
	g.adj[u] = append(g.adj[u], v)
}

// Succ returns the successors of u.  The returned slice must not be
// modified.
func (g *Graph) Succ(u int) []int { return g.adj[u] }

// Reachable returns the set of vertices reachable from the given sources
// (including the sources themselves) as a boolean slice indexed by vertex.
func (g *Graph) Reachable(sources ...int) []bool {
	seen := make([]bool, len(g.adj))
	stack := make([]int, 0, len(sources))
	for _, s := range sources {
		if s >= 0 && s < len(seen) && !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.adj[u] {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}

// BackwardReachable returns the set of vertices from which some vertex in
// targets is reachable.  It runs a reverse BFS, so it needs the transposed
// adjacency which it builds on the fly.
func (g *Graph) BackwardReachable(targets ...int) []bool {
	rev := g.Transpose()
	return rev.Reachable(targets...)
}

// Transpose returns the graph with all edges reversed.
func (g *Graph) Transpose() *Graph {
	t := New(len(g.adj))
	for u, vs := range g.adj {
		for _, v := range vs {
			t.adj[v] = append(t.adj[v], u)
		}
	}
	return t
}

// SCCResult is the output of Tarjan's algorithm.
type SCCResult struct {
	// Comp maps each vertex to its component number.  Components are
	// numbered in reverse topological order: if there is an edge from
	// component a to component b (a != b) then Comp index of a is greater
	// than that of b.
	Comp []int
	// Components lists the vertices of each component.
	Components [][]int
}

// NumComponents returns the number of strongly connected components.
func (r *SCCResult) NumComponents() int { return len(r.Components) }

// IsTrivial reports whether component c consists of a single vertex without
// a self loop in the original graph g.  Trivial components cannot carry an
// infinite path by themselves.
func (r *SCCResult) IsTrivial(g *Graph, c int) bool {
	if len(r.Components[c]) != 1 {
		return false
	}
	v := r.Components[c][0]
	for _, w := range g.Succ(v) {
		if w == v {
			return false
		}
	}
	return true
}

// SCC computes the strongly connected components of g using an iterative
// version of Tarjan's algorithm (iterative so that structures with hundreds
// of thousands of states do not overflow the goroutine stack).
func (g *Graph) SCC() *SCCResult {
	n := len(g.adj)
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	comp := make([]int, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var stack []int
	var components [][]int
	next := 0

	type frame struct {
		v     int
		child int
	}
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		callStack := []frame{{v: root}}
		for len(callStack) > 0 {
			fr := &callStack[len(callStack)-1]
			v := fr.v
			if fr.child == 0 {
				index[v] = next
				low[v] = next
				next++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for fr.child < len(g.adj[v]) {
				w := g.adj[v][fr.child]
				fr.child++
				if index[w] == unvisited {
					callStack = append(callStack, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// All children explored.
			if low[v] == index[v] {
				var component []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = len(components)
					component = append(component, w)
					if w == v {
						break
					}
				}
				components = append(components, component)
			}
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				parent := callStack[len(callStack)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
		}
	}
	return &SCCResult{Comp: comp, Components: components}
}

// SCCComp computes only the component assignment of Tarjan's algorithm: it
// returns comp (vertex -> component number, numbered in reverse topological
// order like SCC) and the number of components.  Callers that do not need
// the per-component vertex lists — e.g. the partition-refinement engine,
// which contracts components on every comparison — avoid the O(#components)
// slice allocations of SCC.
func (g *Graph) SCCComp() (comp []int, numComponents int) {
	n := len(g.adj)
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	comp = make([]int, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var stack []int
	next := 0

	type frame struct {
		v     int
		child int
	}
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		callStack := []frame{{v: root}}
		for len(callStack) > 0 {
			fr := &callStack[len(callStack)-1]
			v := fr.v
			if fr.child == 0 {
				index[v] = next
				low[v] = next
				next++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for fr.child < len(g.adj[v]) {
				w := g.adj[v][fr.child]
				fr.child++
				if index[w] == unvisited {
					callStack = append(callStack, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = numComponents
					if w == v {
						break
					}
				}
				numComponents++
			}
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				parent := callStack[len(callStack)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
		}
	}
	return comp, numComponents
}

// Condensation returns the component DAG of g: one vertex per strongly
// connected component, with an edge between two components whenever g has an
// edge between their members.  Self loops and duplicate edges are removed.
func (g *Graph) Condensation(scc *SCCResult) *Graph {
	if scc == nil {
		scc = g.SCC()
	}
	dag := New(scc.NumComponents())
	seen := map[int64]bool{}
	for u, vs := range g.adj {
		cu := scc.Comp[u]
		for _, v := range vs {
			cv := scc.Comp[v]
			if cu == cv {
				continue
			}
			key := int64(cu)<<32 | int64(uint32(cv))
			if seen[key] {
				continue
			}
			seen[key] = true
			dag.AddEdge(cu, cv)
		}
	}
	return dag
}
