// Package graph provides the small set of directed-graph algorithms the
// model checker and the correspondence engine are built on: depth-first
// reachability, Tarjan's strongly connected components, and the condensation
// (component DAG).  Graphs are represented as adjacency lists over dense
// integer vertices so callers can map Kripke or tableau states directly onto
// them.
package graph

import "fmt"

// Graph is a directed graph over the vertices 0..N-1.
//
// Edges added with AddEdge are collected in one flat list and compiled into
// compressed-sparse-row form on first read, so building a graph costs O(1)
// amortised per edge with no per-vertex slice growth — the model checker
// builds a restricted graph per EG subformula and a product graph per
// tableau run, which made per-edge appends the dominant allocation source.
// The CSR preserves insertion order within each vertex's successor list, so
// algorithm outputs (component numbering, traversal order) are exactly those
// of the old adjacency-list representation.
type Graph struct {
	n     int
	adj   [][]int // only for FromAdjacency graphs; nil otherwise
	eFrom []int32 // pending edge list
	eTo   []int32
	off   []int32 // CSR, built by ensure()
	dst   []int
	dirty bool
}

// New returns an empty graph with n vertices.
func New(n int) *Graph {
	return &Graph{n: n}
}

// FromAdjacency wraps an existing adjacency list without copying it.  The
// caller must not modify adj afterwards.
func FromAdjacency(adj [][]int) *Graph { return &Graph{n: len(adj), adj: adj} }

// FromCSR wraps a prebuilt compressed-sparse-row adjacency without copying:
// off has n+1 entries and dst[off[u]:off[u+1]] lists the successors of u.
// The caller must not modify either slice afterwards.  Engines that can
// count their edges up front (the packed tableau product) assemble the CSR
// with two word-batched passes and skip the pending edge list entirely.
func FromCSR(off []int32, dst []int) *Graph {
	return &Graph{n: len(off) - 1, off: off, dst: dst}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// AddEdge adds the directed edge u -> v.  It panics if either endpoint is
// out of range, which always indicates a programming error in the caller.
func (g *Graph) AddEdge(u, v int) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: AddEdge(%d, %d) out of range [0, %d)", u, v, g.n))
	}
	if g.adj != nil {
		g.adj[u] = append(g.adj[u], v)
		return
	}
	if g.off != nil && len(g.eFrom) == 0 && len(g.dst) > 0 {
		// The CSR was built directly, without a pending list (Transpose
		// does this).  Materialise the pending edges before mutating, so
		// the rebuild triggered by this AddEdge keeps them.
		for w := 0; w < g.n; w++ {
			for _, x := range g.dst[g.off[w]:g.off[w+1]] {
				g.eFrom = append(g.eFrom, int32(w))
				g.eTo = append(g.eTo, int32(x))
			}
		}
	}
	g.eFrom = append(g.eFrom, int32(u))
	g.eTo = append(g.eTo, int32(v))
	g.dirty = true
}

// buildCSR compiles an edge list into CSR form with a stable counting fill,
// so each vertex's successors keep the edge list's order.
func buildCSR(n int, from, to []int32) (off []int32, dst []int) {
	off = make([]int32, n+1)
	for _, u := range from {
		off[u+1]++
	}
	for u := 0; u < n; u++ {
		off[u+1] += off[u]
	}
	dst = make([]int, len(from))
	next := make([]int32, n)
	copy(next, off[:n])
	for i, u := range from {
		dst[next[u]] = int(to[i])
		next[u]++
	}
	return off, dst
}

// ensure compiles the pending edge list into CSR form.
func (g *Graph) ensure() {
	if !g.dirty && g.off != nil {
		return
	}
	g.off, g.dst = buildCSR(g.n, g.eFrom, g.eTo)
	g.dirty = false
}

// Succ returns the successors of u in insertion order.  The returned slice
// must not be modified.
func (g *Graph) Succ(u int) []int {
	if g.adj != nil {
		return g.adj[u]
	}
	g.ensure()
	return g.dst[g.off[u]:g.off[u+1]]
}

// Reachable returns the set of vertices reachable from the given sources
// (including the sources themselves) as a boolean slice indexed by vertex.
func (g *Graph) Reachable(sources ...int) []bool {
	seen := make([]bool, g.n)
	stack := make([]int, 0, len(sources))
	for _, s := range sources {
		if s >= 0 && s < len(seen) && !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.Succ(u) {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}

// BackwardReachable returns the set of vertices from which some vertex in
// targets is reachable.  It runs a reverse BFS, so it needs the transposed
// adjacency which it builds on the fly.
func (g *Graph) BackwardReachable(targets ...int) []bool {
	rev := g.Transpose()
	return rev.Reachable(targets...)
}

// Transpose returns the graph with all edges reversed.
func (g *Graph) Transpose() *Graph {
	t := New(g.n)
	if g.adj != nil {
		for u, vs := range g.adj {
			for _, v := range vs {
				t.AddEdge(v, u)
			}
		}
		return t
	}
	// Build the transposed CSR directly with one counting pass — no
	// per-vertex growth, no pending list (AddEdge reconstructs one if the
	// transposed graph is ever mutated).
	if len(g.eFrom) > 0 {
		t.off, t.dst = buildCSR(g.n, g.eTo, g.eFrom)
		return t
	}
	// CSR-only graph (FromCSR, or a previous Transpose): count over the CSR
	// itself, preserving source order within each transposed successor list.
	g.ensure()
	off := make([]int32, g.n+1)
	for _, v := range g.dst {
		off[v+1]++
	}
	for u := 0; u < g.n; u++ {
		off[u+1] += off[u]
	}
	dst := make([]int, len(g.dst))
	next := make([]int32, g.n)
	copy(next, off[:g.n])
	for u := 0; u < g.n; u++ {
		for _, v := range g.dst[g.off[u]:g.off[u+1]] {
			dst[next[v]] = u
			next[v]++
		}
	}
	t.off, t.dst = off, dst
	return t
}

// SCCResult is the output of Tarjan's algorithm.
type SCCResult struct {
	// Comp maps each vertex to its component number.  Components are
	// numbered in reverse topological order: if there is an edge from
	// component a to component b (a != b) then Comp index of a is greater
	// than that of b.
	Comp []int
	// Components lists the vertices of each component.
	Components [][]int
}

// NumComponents returns the number of strongly connected components.
func (r *SCCResult) NumComponents() int { return len(r.Components) }

// IsTrivial reports whether component c consists of a single vertex without
// a self loop in the original graph g.  Trivial components cannot carry an
// infinite path by themselves.
func (r *SCCResult) IsTrivial(g *Graph, c int) bool {
	if len(r.Components[c]) != 1 {
		return false
	}
	v := r.Components[c][0]
	for _, w := range g.Succ(v) {
		if w == v {
			return false
		}
	}
	return true
}

// SCC computes the strongly connected components of g using an iterative
// version of Tarjan's algorithm (iterative so that structures with hundreds
// of thousands of states do not overflow the goroutine stack).
func (g *Graph) SCC() *SCCResult {
	n := g.n
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	comp := make([]int, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var stack []int
	var components [][]int
	next := 0

	type frame struct {
		v     int
		child int
	}
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		callStack := []frame{{v: root}}
		for len(callStack) > 0 {
			fr := &callStack[len(callStack)-1]
			v := fr.v
			if fr.child == 0 {
				index[v] = next
				low[v] = next
				next++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			succ := g.Succ(v)
			for fr.child < len(succ) {
				w := succ[fr.child]
				fr.child++
				if index[w] == unvisited {
					callStack = append(callStack, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// All children explored.
			if low[v] == index[v] {
				var component []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = len(components)
					component = append(component, w)
					if w == v {
						break
					}
				}
				components = append(components, component)
			}
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				parent := callStack[len(callStack)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
		}
	}
	return &SCCResult{Comp: comp, Components: components}
}

// SCCComp computes only the component assignment of Tarjan's algorithm: it
// returns comp (vertex -> component number, numbered in reverse topological
// order like SCC) and the number of components.  Callers that do not need
// the per-component vertex lists — e.g. the partition-refinement engine,
// which contracts components on every comparison — avoid the O(#components)
// slice allocations of SCC.
func (g *Graph) SCCComp() (comp []int, numComponents int) {
	n := g.n
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	comp = make([]int, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var stack []int
	next := 0

	type frame struct {
		v     int
		child int
	}
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		callStack := []frame{{v: root}}
		for len(callStack) > 0 {
			fr := &callStack[len(callStack)-1]
			v := fr.v
			if fr.child == 0 {
				index[v] = next
				low[v] = next
				next++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			succ := g.Succ(v)
			for fr.child < len(succ) {
				w := succ[fr.child]
				fr.child++
				if index[w] == unvisited {
					callStack = append(callStack, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = numComponents
					if w == v {
						break
					}
				}
				numComponents++
			}
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				parent := callStack[len(callStack)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
		}
	}
	return comp, numComponents
}

// Condensation returns the component DAG of g: one vertex per strongly
// connected component, with an edge between two components whenever g has an
// edge between their members.  Self loops and duplicate edges are removed.
func (g *Graph) Condensation(scc *SCCResult) *Graph {
	if scc == nil {
		scc = g.SCC()
	}
	dag := New(scc.NumComponents())
	seen := map[int64]bool{}
	for u := 0; u < g.n; u++ {
		cu := scc.Comp[u]
		for _, v := range g.Succ(u) {
			cv := scc.Comp[v]
			if cu == cv {
				continue
			}
			key := int64(cu)<<32 | int64(uint32(cv))
			if seen[key] {
				continue
			}
			seen[key] = true
			dag.AddEdge(cu, cv)
		}
	}
	return dag
}
