#!/usr/bin/env bash
# lint.sh — the shared lint gate: gofmt, go vet, and the repository's own
# static-analysis suite (cmd/repolint, see DESIGN.md §8).  One script so the
# lint and docs CI jobs and scripts/bench.sh cannot drift apart on what
# "clean" means.
#
# Usage:
#   scripts/lint.sh                      # gofmt over the whole tree
#   scripts/lint.sh pkg internal/family  # restrict gofmt to these dirs
#
# go vet and repolint always cover ./... — formatting scope is the only
# parameter, because the docs job checks formatting of its own surface only.
set -euo pipefail
cd "$(dirname "$0")/.."

fmt_targets=("$@")
if [ ${#fmt_targets[@]} -eq 0 ]; then
    fmt_targets=(.)
fi

unformatted="$(gofmt -l "${fmt_targets[@]}")"
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go run ./cmd/repolint ./...
