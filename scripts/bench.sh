#!/usr/bin/env bash
# bench.sh — run the repository's benchmark battery (the E1..E10 experiment
# benchmarks plus the engine micro-benchmarks in bench_test.go) and record
# the results as JSON, so the perf trajectory of the hot paths is tracked
# across PRs instead of living in commit messages.
#
# Usage:
#   scripts/bench.sh                # full run (default benchtime), writes BENCH_pr9.json
#   scripts/bench.sh --smoke        # 1 iteration per benchmark: the CI smoke job
#   BENCH_OUT=out.json scripts/bench.sh
#   BENCHTIME=3x scripts/bench.sh   # custom -benchtime
#
# Each JSON entry carries the benchmark name, iteration count and every
# metric Go reported (ns/op, B/op, allocs/op, and custom metrics such as
# states/sec from the construction series BenchmarkParallelBuild and
# BenchmarkPackedExplore).
#
# The script fails loudly: a benchmark binary that fails to build, a
# benchmark that calls b.Fatal, or a run that produces no parseable
# benchmark lines all exit non-zero without writing the JSON — a silent
# empty result would read as "benchmarked everything" when nothing ran.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${BENCH_OUT:-BENCH_pr9.json}"
benchtime="${BENCHTIME:-1s}"
if [ "${1:-}" = "--smoke" ]; then
    benchtime="1x"
fi

# A tree that violates the engine invariants (see DESIGN.md §8) does not get
# a recorded baseline: numbers from a build with nondeterministic ordering or
# broken cancellation are not comparable across PRs.
if ! go run ./cmd/repolint ./...; then
    echo "bench.sh: repolint reports findings; fix or waive them before recording $out" >&2
    exit 1
fi

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

# tee under pipefail still propagates go test's exit status, but keep the
# status explicit so a failure is reported as such, not as a tee artefact.
if ! go test -run '^$' -bench . -benchmem -benchtime "$benchtime" -timeout 60m . | tee "$raw"; then
    echo "bench.sh: benchmark run failed (see output above); not writing $out" >&2
    exit 1
fi
if grep -Eq '^(FAIL|--- FAIL)' "$raw"; then
    echo "bench.sh: FAIL marker in benchmark output; not writing $out" >&2
    exit 1
fi
count="$(grep -c '^Benchmark' "$raw" || true)"
if [ "${count:-0}" -eq 0 ]; then
    echo "bench.sh: no benchmark results parsed from the run; not writing $out" >&2
    exit 1
fi

awk -v benchtime="$benchtime" '
BEGIN {
    printf "{\n  \"harness\": \"scripts/bench.sh\",\n  \"benchtime\": \"%s\",\n  \"results\": [", benchtime
    n = 0
}
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the -GOMAXPROCS suffix
    if (n++) printf ","
    printf "\n    {\"name\": \"%s\", \"iterations\": %s, \"metrics\": {", name, $2
    first = 1
    for (i = 3; i + 1 <= NF; i += 2) {
        if (!first) printf ", "
        first = 0
        printf "\"%s\": %s", $(i + 1), $i
    }
    printf "}}"
}
END {
    printf "\n  ],\n  \"goos\": \"%s\",\n  \"goarch\": \"%s\",\n  \"cpu\": \"%s\"\n}\n", goos, goarch, cpu
}
' "$raw" > "$out"

echo "wrote $out ($count benchmarks)"
