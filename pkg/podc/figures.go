package podc

import (
	"repro/internal/paperfig"
)

// This file exposes the paper's executable figures, so examples and
// services can refer to them without reaching into the internals.

// PaperFig31 reconstructs Fig. 3.1: a pair of corresponding structures in
// which one state of the second structure exactly matches a state of the
// first (degree 0) while another needs two stuttering transitions to reach
// an exact match (degree 2).
func PaperFig31() (left, right *Structure, err error) {
	l, r, err := paperfig.Fig31()
	if err != nil {
		return nil, nil, err
	}
	return wrapStructure(l), wrapStructure(r), nil
}

// CountingStructure builds the Fig. 4.1 family member with n processes:
// each process starts with a_i and may take one step, after which b_i holds
// forever.  The family demonstrates why the indexed logic must be
// restricted — unrestricted quantifier nesting counts processes.
func CountingStructure(n int) (*Structure, error) {
	m, err := paperfig.Fig41(n)
	if err != nil {
		return nil, err
	}
	return wrapStructure(m), nil
}

// CountingFormula returns the depth-k nested counting formula of Fig. 4.1,
// which holds exactly on products with at least k processes (and therefore
// lies outside the restricted fragment).
func CountingFormula(k int) Formula {
	return wrapFormula(paperfig.Fig41CountingFormula(k))
}

// CountingRestrictedFormulas returns restricted ICTL* formulas over the
// Fig. 4.1 vocabulary, whose truth is independent of the number of
// processes (n ≥ 2) — the behaviour Theorem 5 guarantees.
func CountingRestrictedFormulas() []Formula {
	fs := paperfig.Fig41RestrictedFormulas()
	out := make([]Formula, len(fs))
	for i, f := range fs {
		out[i] = wrapFormula(f)
	}
	return out
}
