package podc

import (
	"context"
	"fmt"

	"repro/internal/bisim"
	"repro/internal/kripke"
)

// Correspondence is the maximal stuttering correspondence between two
// structures (Section 3): every pair of states that can be part of some
// correspondence relation, together with its minimal degree — the bound on
// the number of stuttering steps either side may take before an exact match
// must be reached.
type Correspondence struct {
	res *bisim.Result
	ev  *Evidence
}

// Correspond computes the maximal correspondence between left and right.
// When it Corresponds(), Theorem 2 guarantees the two structures satisfy
// exactly the same CTL* formulas without the nexttime operator over the
// compared vocabulary (extend it with WithAtoms; restrict totality with
// WithReachableOnly).  Cancelling ctx stops the decision procedure promptly.
func Correspond(ctx context.Context, left, right *Structure, opts ...Option) (*Correspondence, error) {
	if left == nil || right == nil {
		return nil, fmt.Errorf("podc: Correspond: nil structure")
	}
	cfg := buildConfig(opts)
	res, err := bisim.Compute(ctx, left.raw(), right.raw(), cfg.bisimOptions())
	if err != nil {
		return nil, err
	}
	out := &Correspondence{res: res}
	if cfg.evidence && !res.Corresponds() {
		raw, err := bisim.Explain(ctx, left.raw(), right.raw(), cfg.bisimOptions(), res)
		if err != nil {
			return nil, err
		}
		ev, err := evidenceFromBisim(ctx, raw, bisim.IndexPair{})
		if err != nil {
			return nil, err
		}
		out.ev = ev
	}
	return out, nil
}

// Evidence returns the machine-checked explanation of a failed
// correspondence: the distinguishing formula, the states it separates and
// the game path.  It is non-nil exactly when the correspondence was
// computed with WithEvidence and does not hold.
func (c *Correspondence) Evidence() *Evidence {
	if c == nil {
		return nil
	}
	return c.ev
}

// Corresponds reports whether the structures correspond: initial states
// related and the relation total on both state sets.
func (c *Correspondence) Corresponds() bool { return c != nil && c.res.Corresponds() }

// InitialsRelated reports whether the two initial states are related
// (clause 1 of the definition).
func (c *Correspondence) InitialsRelated() bool { return c != nil && c.res.InitialRelated }

// Total reports whether every state of the left / right structure is
// related to something.
func (c *Correspondence) Total() (left, right bool) {
	if c == nil {
		return false, false
	}
	return c.res.TotalLeft, c.res.TotalRight
}

// Size returns the number of related pairs.
func (c *Correspondence) Size() int { return c.res.Relation.Size() }

// MaxDegree returns the largest minimal degree over all related pairs — how
// much stuttering the relation needs (0 for a lock-step bisimulation).
func (c *Correspondence) MaxDegree() int { return c.res.Relation.MaxDegree() }

// Degree returns the minimal degree of the pair (s, t) and whether the pair
// is related.
func (c *Correspondence) Degree(s, t State) (int, bool) {
	return c.res.Relation.Degree(kripke.State(s), kripke.State(t))
}

// RelatedPair is one element of a correspondence relation.
type RelatedPair struct {
	Left   State `json:"s"`
	Right  State `json:"t"`
	Degree int   `json:"degree"`
}

// Pairs returns every related pair ordered by (left, right).
func (c *Correspondence) Pairs() []RelatedPair {
	raw := c.res.Relation.Pairs()
	out := make([]RelatedPair, len(raw))
	for i, p := range raw {
		out[i] = RelatedPair{Left: State(p.S), Right: State(p.T), Degree: p.Degree}
	}
	return out
}

// MarshalJSON serialises the relation (dimensions plus the pair list), the
// same encoding transfer certificates embed.
func (c *Correspondence) MarshalJSON() ([]byte, error) { return c.res.Relation.MarshalJSON() }

// IndexPair is one element of an index relation IN ⊆ I × I' (Section 4):
// process I of the small structure is observed against process I2 of the
// large one.
type IndexPair struct {
	I  int `json:"i"`
	I2 int `json:"i2"`
}

func indexPairsToRaw(in []IndexPair) []bisim.IndexPair {
	out := make([]bisim.IndexPair, len(in))
	for i, p := range in {
		out[i] = bisim.IndexPair{I: p.I, I2: p.I2}
	}
	return out
}

func indexPairsFromRaw(in []bisim.IndexPair) []IndexPair {
	out := make([]IndexPair, len(in))
	for i, p := range in {
		out[i] = IndexPair{I: p.I, I2: p.I2}
	}
	return out
}

// IndexedCorrespondence is the outcome of IndexedCorrespond: the per-pair
// correspondences of the reductions, plus totality of IN over both index
// sets.
type IndexedCorrespondence struct {
	res *bisim.IndexedResult
	in  []IndexPair
	ev  *Evidence
}

// IndexedCorrespond decides the indexed correspondence of Section 4 between
// left and right over the index relation in: for every (i, i') ∈ in the
// reductions left|i and right|i' are compared with the maximal-
// correspondence engine, on a worker pool capped by WithWorkers.  When it
// Corresponds(), Theorem 5 transfers every closed restricted ICTL* formula
// between the structures.  Cancelling ctx stops the pool promptly.
func IndexedCorrespond(ctx context.Context, left, right *Structure, in []IndexPair, opts ...Option) (*IndexedCorrespondence, error) {
	if left == nil || right == nil {
		return nil, fmt.Errorf("podc: IndexedCorrespond: nil structure")
	}
	cfg := buildConfig(opts)
	res, err := bisim.IndexedCompute(ctx, left.raw(), right.raw(), indexPairsToRaw(in), cfg.bisimOptions())
	if err != nil {
		return nil, err
	}
	out := &IndexedCorrespondence{res: res, in: append([]IndexPair(nil), in...)}
	if cfg.evidence && !res.Corresponds() {
		raw, pair, err := bisim.ExplainIndexed(ctx, left.raw(), right.raw(), res, cfg.bisimOptions())
		if err != nil {
			return nil, err
		}
		ev, err := evidenceFromBisim(ctx, raw, pair)
		if err != nil {
			return nil, err
		}
		out.ev = ev
	}
	return out, nil
}

// Evidence returns the machine-checked explanation of a failed indexed
// correspondence: the offending index pair, the distinguishing formula
// over its reductions and the game path.  It is non-nil exactly when the
// correspondence was computed with WithEvidence and does not hold.
func (c *IndexedCorrespondence) Evidence() *Evidence {
	if c == nil {
		return nil
	}
	return c.ev
}

// DefaultIndexRelation builds the index relation the paper uses for the
// token ring: the first index of left is paired with the first index of
// right, and the last index of left with every remaining index of right.
// Appropriate whenever the first process plays a distinguished role and all
// others are interchangeable.
func DefaultIndexRelation(left, right *Structure) []IndexPair {
	return indexPairsFromRaw(bisim.DefaultIndexRelation(left.raw(), right.raw()))
}

// Corresponds reports whether the structures indexed-correspond: IN total
// on both index sets and every pair's reductions correspond.
func (c *IndexedCorrespondence) Corresponds() bool { return c != nil && c.res.Corresponds() }

// IndexRelation returns the IN relation the correspondence was decided
// over, in the order supplied.
func (c *IndexedCorrespondence) IndexRelation() []IndexPair {
	return append([]IndexPair(nil), c.in...)
}

// FailingPairs returns the index pairs whose reductions do not correspond,
// sorted.
func (c *IndexedCorrespondence) FailingPairs() []IndexPair {
	return indexPairsFromRaw(c.res.FailingPairs())
}

// MaxDegree returns the largest minimal degree over all per-pair relations.
func (c *IndexedCorrespondence) MaxDegree() int {
	max := 0
	for _, r := range c.res.Pairs {
		if d := r.Relation.MaxDegree(); d > max {
			max = d
		}
	}
	return max
}

// PairResult returns the correspondence decided for one index pair of the
// IN relation, and whether that pair was part of it.
func (c *IndexedCorrespondence) PairResult(p IndexPair) (*Correspondence, bool) {
	r, ok := c.res.Pairs[bisim.IndexPair{I: p.I, I2: p.I2}]
	if !ok {
		return nil, false
	}
	return &Correspondence{res: r}, true
}
