package podc

import (
	"repro/internal/experiments"
)

// Table is one experiment's result in machine-readable form: an identifier,
// a title, column names, stringified rows and free-form notes.  Tables are
// what cmd/experiments prints, what Session.Experiment returns and what the
// HTTP service serves as JSON.
type Table struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

func tableFromRaw(t *experiments.Table) *Table {
	if t == nil {
		return nil
	}
	return &Table{
		ID:      t.ID,
		Title:   t.Title,
		Columns: append([]string(nil), t.Columns...),
		Rows:    append([][]string(nil), t.Rows...),
		Notes:   append([]string(nil), t.Notes...),
	}
}

func (t *Table) raw() *experiments.Table {
	return &experiments.Table{ID: t.ID, Title: t.Title, Columns: t.Columns, Rows: t.Rows, Notes: t.Notes}
}

// Markdown renders the table as GitHub-flavoured markdown.
func (t *Table) Markdown() string { return t.raw().Markdown() }

// Text renders the table as aligned plain text.
func (t *Table) Text() string { return t.raw().Text() }
