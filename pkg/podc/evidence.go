package podc

import (
	"context"
	"fmt"

	"repro/internal/bisim"
	"repro/internal/family"
	"repro/internal/mc"
	"repro/internal/ring"
)

// This file is the public face of the evidence subsystem: when a
// correspondence fails or a specification is refuted, the library answers
// with a machine-checked explanation instead of a bare boolean — a
// distinguishing formula replayed through the model checker (Theorem 2/5
// run backwards: non-equivalent states must disagree on some CTL*-X
// formula, and here is one), a witness or counterexample trace, and the
// decisive game path.  Request it with WithEvidence on correspondence
// operations, or with Verifier.Explain for model-checking verdicts.

// Evidence explains a failed correspondence.  Its Formula is a closed
// CTL* (no nexttime) formula over the compared vocabulary that is true at
// LeftState of the left (small) structure and false at RightState of the
// right (large) one — for indexed correspondences, over the normalised
// reductions of the failing index pair.  Every Evidence returned by this
// package has been replayed through the model checker on both sides;
// Confirmed records that.
type Evidence struct {
	// Reason identifies the violated clause of the correspondence
	// definition (initial states distinguished, a state unmatched, or the
	// index relation not total).
	Reason string `json:"reason"`
	// Pair is the failing index pair (zero for plain correspondences and
	// index-relation failures).
	Pair IndexPair `json:"pair"`
	// Formula is the distinguishing formula (invalid when the index
	// relation itself failed; check Formula.IsValid).
	Formula Formula `json:"-"`
	// FormulaText is the printed form of Formula ("" when none), for
	// serialisation.
	FormulaText string `json:"formula,omitempty"`
	// LeftState / RightState are the states Formula separates.
	LeftState  State `json:"left_state"`
	RightState State `json:"right_state"`
	// GamePath demonstrates the decisive condition (a stuttering path, a
	// divergence lasso, or the path to an unmatched state) on the side
	// named by GameSide; GameLoop is the index a trailing loop re-enters,
	// or -1.
	GamePath []State `json:"game_path,omitempty"`
	GameSide string  `json:"game_side,omitempty"`
	GameLoop int     `json:"game_loop"`
	// Confirmed reports that the formula was replayed through the model
	// checker and evaluated true on the left side and false on the right.
	Confirmed bool `json:"confirmed"`
}

// String renders the evidence on one line.
func (e *Evidence) String() string {
	if e == nil {
		return "<no evidence>"
	}
	if e.FormulaText == "" {
		return e.Reason
	}
	return fmt.Sprintf("%s: %s (replay confirmed: %v)", e.Reason, e.FormulaText, e.Confirmed)
}

// wrapRawEvidence packages raw bisim evidence for the public API;
// confirmed records whether its formula has already been replayed through
// the model checker.
func wrapRawEvidence(ev *bisim.Evidence, pair bisim.IndexPair, confirmed bool) *Evidence {
	out := &Evidence{
		Reason:     string(ev.Reason),
		Pair:       IndexPair{I: pair.I, I2: pair.I2},
		LeftState:  State(ev.LeftState),
		RightState: State(ev.RightState),
		GamePath:   statesFromRaw(ev.GamePath),
		GameSide:   ev.GameSide,
		GameLoop:   ev.GameLoop,
	}
	if ev.Formula != nil {
		out.Formula = wrapFormula(ev.Formula)
		out.FormulaText = out.Formula.String()
		out.Confirmed = confirmed
	}
	return out
}

// evidenceFromBisim replays raw evidence through the model checker and
// wraps it for the public API.  A replay mismatch is an error: the
// subsystem never hands out an unchecked distinguishing formula.
func evidenceFromBisim(ctx context.Context, ev *bisim.Evidence, pair bisim.IndexPair) (*Evidence, error) {
	if ev == nil {
		return nil, nil
	}
	if ev.Formula == nil {
		return wrapRawEvidence(ev, pair, false), nil
	}
	if err := mc.ReplayEvidence(ctx, ev); err != nil {
		return nil, fmt.Errorf("podc: evidence rejected by replay: %w", err)
	}
	return wrapRawEvidence(ev, pair, true), nil
}

// evidenceFromFamily wraps already-replayed family evidence.
func evidenceFromFamily(ev *family.Evidence) *Evidence {
	if ev == nil {
		return nil
	}
	out := &Evidence{
		Reason:    "index-relation-not-total",
		Pair:      IndexPair{I: ev.Pair.I, I2: ev.Pair.I2},
		Confirmed: ev.Confirmed,
		GameLoop:  -1,
	}
	if d := ev.Detail; d != nil {
		out.Reason = string(d.Reason)
		out.LeftState = State(d.LeftState)
		out.RightState = State(d.RightState)
		out.GamePath = statesFromRaw(d.GamePath)
		out.GameSide = d.GameSide
		out.GameLoop = d.GameLoop
		if d.Formula != nil {
			out.Formula = wrapFormula(d.Formula)
			out.FormulaText = out.Formula.String()
		}
	}
	return out
}

// Explanation is an explained model-checking verdict: the instantiated
// formula, whether it holds, the decisive subformula the diagnosis
// descended to, and — when that subformula has a diagnosable CTL shape —
// the witness or counterexample trace demonstrating it (a lasso for
// liveness violations).
type Explanation struct {
	// Formula is the queried formula after instantiating indexed
	// quantifiers.
	Formula Formula
	// Holds is the verdict at the queried state.
	Holds bool
	// Decisive is the subformula the trace attaches to: the failing
	// conjunct, the satisfied disjunct, the refuted universal property.
	Decisive Formula
	// DecisiveHolds is Decisive's verdict (polarity can flip under
	// negations).
	DecisiveHolds bool
	// Trace demonstrates Decisive (nil when its shape admits no
	// single-path evidence, e.g. a true universal property).
	Trace *Trace
	// Note says in words what the trace shows, or why there is none.
	Note string
}

// Explain reports whether the closed formula f holds in the initial state
// and explains the verdict with a decisive subformula and, where the shape
// admits one, a witness or counterexample trace.  Every false universal
// verdict of CTL shape yields a counterexample path (a lasso for liveness)
// and every true existential verdict a witness path.
func (v *Verifier) Explain(ctx context.Context, f Formula) (*Explanation, error) {
	if !f.IsValid() {
		return nil, errInvalidFormula()
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	raw, err := v.checker.Explain(ctx, f.raw(), v.checker.Structure().Initial())
	if err != nil {
		return nil, err
	}
	out := &Explanation{
		Formula:       wrapFormula(raw.Formula),
		Holds:         raw.Holds,
		DecisiveHolds: raw.DecisiveHolds,
		Note:          raw.Note,
	}
	if raw.Decisive != nil {
		out.Decisive = wrapFormula(raw.Decisive)
	}
	if raw.Trace != nil {
		out.Trace = wrapTrace(raw.Trace, v.checker.Structure())
	}
	return out, nil
}

// ExplainRingCorrespondence decides the indexed correspondence between two
// built ring instances and, when they do not correspond, returns the
// machine-extracted distinguishing evidence for the first failing index
// pair (nil when they correspond).  The formula is replayed through the
// model checker before it is returned.
func ExplainRingCorrespondence(ctx context.Context, small, large *Ring) (*Evidence, error) {
	_, ev, err := RingCorrespondenceWithEvidence(ctx, small, large)
	return ev, err
}

// RingCorrespondenceWithEvidence decides the canonical indexed ring
// correspondence between two built instances and, on failure, extracts
// the replay-confirmed distinguishing evidence in the same pass — the
// decision procedure runs exactly once.  The evidence is nil exactly when
// the instances correspond.
func RingCorrespondenceWithEvidence(ctx context.Context, small, large *Ring) (*IndexedCorrespondence, *Evidence, error) {
	if small == nil || large == nil {
		return nil, nil, fmt.Errorf("podc: RingCorrespondenceWithEvidence: nil ring")
	}
	res, ev, pair, err := ring.DecideCorrespondenceWithEvidence(ctx, small.inst, large.inst)
	if err != nil {
		return nil, nil, err
	}
	corr := &IndexedCorrespondence{
		res: res,
		in:  indexPairsFromRaw(ring.IndexRelationFor(small.Size(), large.Size())),
	}
	if ev == nil {
		return corr, nil, nil
	}
	out := wrapRawEvidence(ev, pair, true) // replayed inside the ring decider
	corr.ev = out
	return corr, out, nil
}
