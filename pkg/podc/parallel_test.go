package podc_test

import (
	"context"
	"sync"
	"testing"

	"repro/pkg/podc"
)

// TestSessionParallelBuildSingleFlight is the PR's concurrency stress test:
// eight goroutines simultaneously request the r = 12 ring (49 152 states)
// from one shared Session configured for parallel construction.  The
// session's single-flight dedup must hand every goroutine the *same* built
// instance — one construction, seven joins — and the parallel build must
// agree with the sequential one.
func TestSessionParallelBuildSingleFlight(t *testing.T) {
	ctx := context.Background()
	const r, goroutines = 12, 8
	s := podc.NewSession(podc.WithParallelBuild(4))

	start := make(chan struct{})
	rings := make([]*podc.Ring, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start // release everyone at once so the flights really race
			rings[g], errs[g] = s.Ring(ctx, r)
		}(g)
	}
	close(start)
	wg.Wait()

	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	for g := 1; g < goroutines; g++ {
		if rings[g] != rings[0] {
			t.Fatalf("goroutine %d got a different instance than goroutine 0: single-flight dedup failed", g)
		}
	}

	seq, err := podc.BuildRing(r)
	if err != nil {
		t.Fatal(err)
	}
	got, want := rings[0].Structure(), seq.Structure()
	if got.NumStates() != want.NumStates() || got.NumTransitions() != want.NumTransitions() {
		t.Fatalf("parallel-built ring has %d states / %d transitions, sequential has %d / %d",
			got.NumStates(), got.NumTransitions(), want.NumStates(), want.NumTransitions())
	}
}

// TestSessionSymmetryInstances: a Session configured with WithSymmetry
// serves topology instances built by the certified quotient-unfold route —
// cached (same pointer on a repeat request) and of the same size as the
// direct build.
func TestSessionSymmetryInstances(t *testing.T) {
	ctx := context.Background()
	s := podc.NewSession(podc.WithSymmetry())
	topo := podc.StarTopology()
	n := topo.CutoffSize() + 2

	m1, err := s.Instance(ctx, topo, n)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := s.Instance(ctx, topo, n)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatal("repeated symmetry-mode Instance requests were not served from the cache")
	}
	direct, err := topo.Build(n)
	if err != nil {
		t.Fatal(err)
	}
	if m1.NumStates() != direct.NumStates() {
		t.Fatalf("unfolded instance has %d states, direct build has %d", m1.NumStates(), direct.NumStates())
	}

	// The symmetry route still decides the family's cutoff correspondence
	// (the unfolded oracle is bisimilar to the direct build).
	res, err := s.Correspondence(ctx, topo, topo.CutoffSize(), n)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Corresponds() {
		t.Fatalf("star %d ~ %d should correspond through the symmetry-built instances", topo.CutoffSize(), n)
	}
}
