package podc_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/pkg/podc"
)

func buildLight(t *testing.T) *podc.Structure {
	t.Helper()
	b := podc.NewBuilder("light")
	g := b.AddState(podc.P("green"))
	y := b.AddState(podc.P("yellow"))
	r := b.AddState(podc.P("red"))
	for _, e := range [][2]podc.State{{g, y}, {y, r}, {r, g}} {
		if err := b.AddTransition(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.SetInitial(g); err != nil {
		t.Fatal(err)
	}
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBuilderVerifierRoundTrip(t *testing.T) {
	ctx := context.Background()
	m := buildLight(t)
	if m.NumStates() != 3 || m.NumTransitions() != 3 || !m.IsTotal() {
		t.Fatalf("unexpected shape: %s", m.Summary())
	}
	v, err := podc.NewVerifier(ctx, m)
	if err != nil {
		t.Fatal(err)
	}
	for text, want := range map[string]bool{
		"AG (yellow -> AX red)": true,
		"AG EF green":           true,
		"AG red":                false,
	} {
		holds, err := v.Check(ctx, podc.MustParseFormula(text))
		if err != nil {
			t.Fatalf("%s: %v", text, err)
		}
		if holds != want {
			t.Errorf("%s = %v, want %v", text, holds, want)
		}
	}
	cx, err := v.Counterexample(ctx, podc.MustParseFormula("AG green"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cx.States) < 2 {
		t.Errorf("counterexample too short: %v", cx)
	}
}

func TestStructureTextAndJSONRoundTrip(t *testing.T) {
	m := buildLight(t)
	var buf bytes.Buffer
	if err := m.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := podc.ParseStructure(buf.String())
	if err != nil {
		t.Fatal(err)
	}
	if decoded.NumStates() != m.NumStates() || decoded.Initial() != m.Initial() {
		t.Errorf("text round trip changed the structure: %s vs %s", decoded.Summary(), m.Summary())
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	fromJSON, err := podc.StructureFromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if fromJSON.NumTransitions() != m.NumTransitions() {
		t.Errorf("JSON round trip changed the transitions")
	}
}

func TestCorrespondStutteredCopy(t *testing.T) {
	ctx := context.Background()
	m := buildLight(t)
	// Stuttered copy: two yellow phases.
	b := podc.NewBuilder("slow")
	g := b.AddState(podc.P("green"))
	y1 := b.AddState(podc.P("yellow"))
	y2 := b.AddState(podc.P("yellow"))
	r := b.AddState(podc.P("red"))
	for _, e := range [][2]podc.State{{g, y1}, {y1, y2}, {y2, r}, {r, g}} {
		if err := b.AddTransition(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.SetInitial(g); err != nil {
		t.Fatal(err)
	}
	slow, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	corr, err := podc.Correspond(ctx, m, slow)
	if err != nil {
		t.Fatal(err)
	}
	if !corr.Corresponds() {
		t.Fatal("the stuttered copy must correspond")
	}
	if corr.MaxDegree() < 1 {
		t.Errorf("stuttering should need a positive degree, got %d", corr.MaxDegree())
	}
	if d, ok := corr.Degree(m.Initial(), slow.Initial()); !ok {
		t.Errorf("initial pair missing (degree %d)", d)
	}
	if len(corr.Pairs()) != corr.Size() {
		t.Errorf("Pairs/Size disagree")
	}
}

func TestFormulaClassification(t *testing.T) {
	f := podc.MustParseFormula("forall i . AG (d[i] -> AF c[i])")
	if !f.IsRestricted() || !f.IsClosed() {
		t.Errorf("liveness should be closed restricted ICTL*")
	}
	x := podc.MustParseFormula("AG (p -> AX q)")
	if x.IsRestricted() {
		t.Errorf("nexttime formulas are not restricted")
	}
	if issues := x.RestrictionIssues(); len(issues) == 0 {
		t.Errorf("expected restriction issues for %s", x)
	}
	var zero podc.Formula
	if zero.IsValid() {
		t.Error("zero formula must be invalid")
	}
	ctx := context.Background()
	v, err := podc.NewVerifier(ctx, buildLight(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Check(ctx, zero); err == nil {
		t.Error("checking the zero formula must fail")
	}
}

func TestRingSurfaceAndTransfer(t *testing.T) {
	ctx := context.Background()
	small, err := podc.BuildRing(podc.RingCutoffSize)
	if err != nil {
		t.Fatal(err)
	}
	large, err := podc.BuildRing(5)
	if err != nil {
		t.Fatal(err)
	}
	corr, err := podc.RingCorrespondence(ctx, small, large)
	if err != nil {
		t.Fatal(err)
	}
	if !corr.Corresponds() {
		t.Fatal("the corrected cutoff correspondence M_3 ~ M_5 must hold")
	}
	// The paper's two-process cutoff fails (the reproduction finding).
	two, err := podc.BuildRing(2)
	if err != nil {
		t.Fatal(err)
	}
	refuted, err := podc.RingCorrespondence(ctx, two, large)
	if err != nil {
		t.Fatal(err)
	}
	if refuted.Corresponds() {
		t.Fatal("M_2 must NOT correspond to M_5")
	}
	if len(refuted.FailingPairs()) == 0 {
		t.Error("expected failing index pairs for the refuted claim")
	}

	cert, err := podc.BuildTransferCertificate(ctx, podc.TokenRingFamily(), podc.RingCutoffSize, 4)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(cert)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := podc.TransferCertificateFromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := decoded.Validate(podc.TokenRingFamily()); err != nil {
		t.Errorf("decoded certificate fails validation: %v", err)
	}
	if _, err := podc.BuildTransferCertificate(ctx, podc.TokenRingFamily(), 2, 4); err == nil {
		t.Error("no certificate may exist for the refuted two-process cutoff")
	}
}

func TestVerifyFamilyTokenRing(t *testing.T) {
	ctx := context.Background()
	report, err := podc.VerifyFamily(ctx, podc.TokenRingFamily(), podc.RingProperties(),
		podc.WithSmallSize(podc.RingCutoffSize),
		podc.WithCorrespondenceSizes(4, 5),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !report.AllHold() {
		t.Error("the Section 5 properties must hold on M_3")
	}
	sizes := report.VerifiedSizes()
	if len(sizes) != 2 || sizes[0] != 4 || sizes[1] != 5 {
		t.Errorf("VerifiedSizes = %v, want [4 5]", sizes)
	}
	for _, res := range report.Results() {
		if !res.Transferable {
			t.Errorf("property %s should be transferable", res.Name)
		}
	}
	if !strings.Contains(report.Summary(), "token-ring") {
		t.Errorf("summary should name the family: %s", report.Summary())
	}
}

func TestVerifierWithMinimize(t *testing.T) {
	ctx := context.Background()
	// The stuttered light minimizes: the two yellow states fuse.
	b := podc.NewBuilder("slow")
	g := b.AddState(podc.P("green"))
	y1 := b.AddState(podc.P("yellow"))
	y2 := b.AddState(podc.P("yellow"))
	r := b.AddState(podc.P("red"))
	for _, e := range [][2]podc.State{{g, y1}, {y1, y2}, {y2, r}, {r, g}} {
		if err := b.AddTransition(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.SetInitial(g); err != nil {
		t.Fatal(err)
	}
	slow, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	v, err := podc.NewVerifier(ctx, slow, podc.WithMinimize())
	if err != nil {
		t.Fatal(err)
	}
	if !v.Minimized() {
		t.Fatal("the stuttered light should minimize")
	}
	if v.Structure().NumStates() >= slow.NumStates() {
		t.Errorf("quotient has %d states, original %d", v.Structure().NumStates(), slow.NumStates())
	}
	holds, err := v.Check(ctx, podc.MustParseFormula("AG (yellow -> AF red)"))
	if err != nil || !holds {
		t.Errorf("CTL*-X truth must be preserved on the quotient: %v %v", holds, err)
	}
}

func TestCancelledVerifier(t *testing.T) {
	m := buildLight(t)
	ctx, cancel := context.WithCancel(context.Background())
	v, err := podc.NewVerifier(ctx, m)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := v.Check(ctx, podc.MustParseFormula("AG EF green")); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestNetworkBuild(t *testing.T) {
	net := &podc.Network{
		Template: &podc.ProcessTemplate{
			Name:    "bit",
			States:  []string{"off", "on"},
			Initial: "off",
			Labels:  map[string][]string{"on": {"on"}},
		},
		N: 3,
		Rules: []podc.NetworkRule{{
			Name:  "flip",
			Guard: func(v podc.NetworkView, i int) bool { return v.Local(i) == "off" },
			Apply: func(v podc.NetworkView, i int) podc.NetworkUpdate {
				return podc.NetworkUpdate{Locals: map[int]string{i: "on"}}
			},
		}},
	}
	m, err := net.Build("bits[3]")
	if err != nil {
		t.Fatal(err)
	}
	// 2^3 global states, with the all-on deadlock made total by the builder?
	// BuildKripke adds self-loops only via MakeTotal inside; just check the
	// structure is well-formed and has 8 states.
	if m.NumStates() != 8 {
		t.Errorf("3 bits should give 8 reachable states, got %d", m.NumStates())
	}
	ctx := context.Background()
	v, err := podc.NewVerifier(ctx, m)
	if err != nil {
		t.Fatal(err)
	}
	holds, err := v.Check(ctx, podc.MustParseFormula("forall i . EF on[i]"))
	if err != nil || !holds {
		t.Errorf("every bit can turn on: %v %v", holds, err)
	}
}

func TestRingLocalCheckReproducesFinding(t *testing.T) {
	ctx := context.Background()
	rep, err := podc.RingLocalCheck(ctx, podc.RingPaperRelation, 200, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations == 0 {
		t.Error("the printed Section 5 relation must show violations at r=200")
	}
	if rep.FirstViolation == "" {
		t.Error("expected a first-violation example")
	}
	// Cancellation propagates.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := podc.RingLocalCheck(cctx, podc.RingPaperRelation, 200, 20, 1); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestPaperFigures(t *testing.T) {
	ctx := context.Background()
	left, right, err := podc.PaperFig31()
	if err != nil {
		t.Fatal(err)
	}
	corr, err := podc.Correspond(ctx, left, right)
	if err != nil {
		t.Fatal(err)
	}
	if !corr.Corresponds() || corr.MaxDegree() != 2 {
		t.Errorf("Fig. 3.1 should correspond with max degree 2, got %v / %d", corr.Corresponds(), corr.MaxDegree())
	}
	if f := podc.CountingFormula(2); f.IsRestricted() {
		t.Error("the depth-2 counting formula must be outside the restricted fragment")
	}
	if fs := podc.CountingRestrictedFormulas(); len(fs) == 0 {
		t.Error("expected restricted example formulas")
	}
}

func TestCorrespondDeadline(t *testing.T) {
	small, err := podc.BuildRing(3)
	if err != nil {
		t.Fatal(err)
	}
	large, err := podc.BuildRing(8)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	if _, err := podc.RingCorrespondence(ctx, small, large); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}
}
