package podc

import (
	"io"
	"strings"

	"repro/internal/kripke"
)

// State identifies a state of a Structure.  States are dense integers in
// [0, NumStates).
type State int

// NoState is returned by operations that fail to find a state.
const NoState State = -1

// Prop is an atomic proposition: either a plain proposition (Indexed false)
// or an indexed proposition P_Index (Indexed true), as in the paper's AP and
// IP × I vocabularies.
type Prop struct {
	Name    string
	Index   int
	Indexed bool
}

// P returns the plain proposition named name.
func P(name string) Prop { return Prop{Name: name} }

// PI returns the indexed proposition name[index].
func PI(name string, index int) Prop { return Prop{Name: name, Index: index, Indexed: true} }

// String renders the proposition as "name" or "name[index]".
func (p Prop) String() string { return p.raw().String() }

// ParseProp parses a proposition written as "name" or "name[index]".
func ParseProp(s string) (Prop, error) {
	kp, err := kripke.ParseProp(s)
	if err != nil {
		return Prop{}, err
	}
	return propFromRaw(kp), nil
}

func (p Prop) raw() kripke.Prop {
	return kripke.Prop{Name: p.Name, Index: p.Index, Indexed: p.Indexed}
}

func propFromRaw(p kripke.Prop) Prop {
	return Prop{Name: p.Name, Index: p.Index, Indexed: p.Indexed}
}

func propsToRaw(props []Prop) []kripke.Prop {
	out := make([]kripke.Prop, len(props))
	for i, p := range props {
		out[i] = p.raw()
	}
	return out
}

// Structure is an immutable Kripke structure: a finite set of states, a
// total transition relation, an initial state and a labelling with atomic
// propositions.  Construct structures with a Builder, parse them with
// ReadStructure/ParseStructure, or decode them with StructureFromJSON;
// the zero value is not usable.  Structures are safe to share between
// goroutines.
type Structure struct {
	m *kripke.Structure
}

// wrapStructure adapts an internal structure; it is the package-internal
// seam every constructor funnels through.
func wrapStructure(m *kripke.Structure) *Structure {
	if m == nil {
		return nil
	}
	return &Structure{m: m}
}

func (m *Structure) raw() *kripke.Structure { return m.m }

// Name returns the structure's name (possibly empty).
func (m *Structure) Name() string { return m.m.Name() }

// NumStates returns the number of states.
func (m *Structure) NumStates() int { return m.m.NumStates() }

// NumTransitions returns the number of transitions.
func (m *Structure) NumTransitions() int { return m.m.NumTransitions() }

// Initial returns the initial state.
func (m *Structure) Initial() State { return State(m.m.Initial()) }

// Succ returns the successors of s in increasing order.
func (m *Structure) Succ(s State) []State {
	return statesFromRaw(m.m.Succ(kripke.State(s)))
}

// Label returns the propositions holding in s, sorted.
func (m *Structure) Label(s State) []Prop {
	lbl := m.m.Label(kripke.State(s))
	out := make([]Prop, len(lbl))
	for i, p := range lbl {
		out[i] = propFromRaw(p)
	}
	return out
}

// Holds reports whether proposition p is in the label of s.
func (m *Structure) Holds(s State, p Prop) bool {
	return m.m.Holds(kripke.State(s), p.raw())
}

// IndexValues returns the index set I of the structure, sorted.
func (m *Structure) IndexValues() []int { return m.m.IndexValues() }

// IsTotal reports whether every state has at least one successor, as the
// semantics of CTL* requires.
func (m *Structure) IsTotal() bool { return m.m.IsTotal() }

// Validate checks the structural invariants (initial state in range, total
// transition relation, transitions in range) and returns nil if the
// structure is well formed.
func (m *Structure) Validate() error { return m.m.Validate() }

// MakeTotal returns a copy in which every deadlock state received a self
// loop (the standard totalisation).  The receiver is unchanged.
func (m *Structure) MakeTotal() *Structure { return wrapStructure(m.m.MakeTotal()) }

// Rename returns a copy of the structure under a new name.
func (m *Structure) Rename(name string) *Structure { return wrapStructure(m.m.Rename(name)) }

// Reduce returns the reduction M|i of Section 4: the same graph with every
// indexed proposition erased except those of process i (renamed to index 0),
// which is the view under which per-process correspondences are decided.
func (m *Structure) Reduce(i int) *Structure { return wrapStructure(m.m.ReduceNormalized(i)) }

// Summary returns a one-line human-readable size summary (states,
// transitions, vocabulary).
func (m *Structure) Summary() string { return m.m.ComputeStats().String() }

// String returns the summary, so structures print usefully.
func (m *Structure) String() string { return m.Summary() }

// WriteText encodes the structure in the line-oriented text format
// understood by ReadStructure and the command line tools.
func (m *Structure) WriteText(w io.Writer) error { return kripke.EncodeText(w, m.m) }

// MarshalJSON implements json.Marshaler.
func (m *Structure) MarshalJSON() ([]byte, error) { return m.m.MarshalJSON() }

// DOT returns a Graphviz rendering of the structure.
func (m *Structure) DOT() string { return m.m.DOT() }

// ReadStructure parses a structure from the text format:
//
//	structure NAME
//	state ID [initial] [: prop prop ...]
//	trans FROM TO [TO ...]
//
// The transition relation is not required to be total; call Validate or
// MakeTotal as needed.
func ReadStructure(r io.Reader) (*Structure, error) {
	m, err := kripke.DecodeText(r)
	if err != nil {
		return nil, err
	}
	return wrapStructure(m), nil
}

// ParseStructure parses a structure from the text format given as a string.
func ParseStructure(text string) (*Structure, error) {
	return ReadStructure(strings.NewReader(text))
}

// StructureFromJSON decodes a structure previously produced by MarshalJSON.
func StructureFromJSON(data []byte) (*Structure, error) {
	m, err := kripke.UnmarshalStructureJSON(data)
	if err != nil {
		return nil, err
	}
	return wrapStructure(m), nil
}

func statesFromRaw(ss []kripke.State) []State {
	out := make([]State, len(ss))
	for i, s := range ss {
		out[i] = State(s)
	}
	return out
}

// Builder incrementally constructs a Structure.  Create one with
// NewBuilder; builders are not safe for concurrent use.
type Builder struct {
	b *kripke.Builder
}

// NewBuilder returns a Builder for a structure with the given name.
func NewBuilder(name string) *Builder { return &Builder{b: kripke.NewBuilder(name)} }

// AddState adds a state labelled with props and returns its identifier.
func (b *Builder) AddState(props ...Prop) State {
	return State(b.b.AddState(propsToRaw(props)...))
}

// AddTransition adds the transition from -> to (duplicates are ignored).
func (b *Builder) AddTransition(from, to State) error {
	return b.b.AddTransition(kripke.State(from), kripke.State(to))
}

// SetInitial designates the initial state.
func (b *Builder) SetInitial(s State) error { return b.b.SetInitial(kripke.State(s)) }

// DeclareIndex records that index value i belongs to the index set even if
// no state labels a proposition with it.
func (b *Builder) DeclareIndex(i int) { b.b.DeclareIndex(i) }

// NumStates returns the number of states added so far.
func (b *Builder) NumStates() int { return b.b.NumStates() }

// Build finalises the structure.  It fails if no state was added, the
// initial state was never set, or the transition relation is not total; use
// BuildPartial to allow deadlocks (e.g. before MakeTotal).
func (b *Builder) Build() (*Structure, error) {
	m, err := b.b.Build()
	if err != nil {
		return nil, err
	}
	return wrapStructure(m), nil
}

// BuildPartial finalises the structure without requiring totality.
func (b *Builder) BuildPartial() (*Structure, error) {
	m, err := b.b.BuildPartial()
	if err != nil {
		return nil, err
	}
	return wrapStructure(m), nil
}
