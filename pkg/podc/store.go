package podc

import (
	"context"
	"fmt"
	"log"

	"repro/internal/bisim"
	"repro/internal/family"
	"repro/internal/kripke"
	"repro/internal/logic"
	"repro/internal/mc"
	"repro/internal/store"
)

// This file connects a Session to the persistent verdict store of
// internal/store (WithStore).  The store is a second cache tier below the
// in-memory flight maps: correspondences, transfer certificates and failure
// evidence survive the process, so a restarted service answers its standing
// battery from disk.  The session trusts nothing it reads back —
// correspondences are structurally audited (CorrespondenceRecord.Restore),
// certificates re-validated clause by clause against freshly built
// instances, and evidence formulas re-parsed and replayed through the model
// checker — so a stale or tampered entry costs a recompute, never a wrong
// answer.

// StoreStats reports the counters of the session's persistent verdict
// store.  ok is false when the session has no working store (WithStore not
// given, or the directory could not be opened).
func (s *Session) StoreStats() (store.Stats, bool) {
	st := s.verdictStore()
	if st == nil {
		return store.Stats{}, false
	}
	return st.Stats(), true
}

// verdictStore lazily opens the configured verdict store.  A store that
// fails to open is logged once and disabled for the session's lifetime: a
// broken cache degrades to cold computation, it never fails a request.
// The returned nil *store.Store is itself a valid no-op store.
func (s *Session) verdictStore() *store.Store {
	if s.cfg.storeDir == "" {
		return nil
	}
	s.storeOnce.Do(func() {
		st, err := store.Open(s.cfg.storeDir)
		if err != nil {
			log.Printf("podc: disabling verdict store: %v", err)
			return
		}
		s.store = st
	})
	return s.store
}

// storeKey addresses one of the session's artefacts in the verdict store.
// The key pins the topology, both sizes, the compared vocabulary and the
// reachability restriction of the canonical decision
// (family.CorrespondOptions), plus the session's instance-construction mode:
// the symmetry-unfolded route renumbers states, so its relations must never
// replay into a directly-built session or vice versa.
func (s *Session) storeKey(kind string, t family.Topology, small, large int) store.Key {
	return store.Key{
		Kind:          kind,
		Topology:      t.Name(),
		Small:         small,
		Large:         large,
		Atoms:         t.Atoms(),
		ReachableOnly: true,
		Extra:         s.cfg.instanceMode(),
	}
}

// storePut writes an artefact back to the store.  Failures are logged, not
// returned: the verdict the caller is about to hand out stands either way.
func storePut(st *store.Store, key store.Key, payload any) {
	if st == nil {
		return
	}
	if err := st.Put(key, payload); err != nil && st.Logf != nil {
		st.Logf("podc: caching %s %s %d~%d: %v", key.Kind, key.Topology, key.Small, key.Large, err)
	}
}

// evidenceRecordFromFamily flattens replay-confirmed family evidence into
// its storable form.  The formula is kept as text; loading re-parses and
// re-replays it, so the stored record can never bypass the replay gate.
func evidenceRecordFromFamily(fev *family.Evidence) *store.EvidenceRecord {
	rec := &store.EvidenceRecord{
		Reason:   string(bisim.ReasonIndexRelation),
		I:        fev.Pair.I,
		I2:       fev.Pair.I2,
		GameLoop: -1,
	}
	if d := fev.Detail; d != nil {
		rec.Reason = string(d.Reason)
		rec.LeftState = int(d.LeftState)
		rec.RightState = int(d.RightState)
		rec.GameSide = d.GameSide
		rec.GameLoop = d.GameLoop
		for _, q := range d.GamePath {
			rec.GamePath = append(rec.GamePath, int(q))
		}
		if d.Formula != nil {
			rec.Formula = d.Formula.String()
		}
	}
	return rec
}

// replayEvidenceRecord turns a stored evidence record back into confirmed
// Evidence: parse the stored formula, rebuild the failing pair's normalised
// reductions from session-cached instances, and replay the formula through
// the model checker — true on the left reduction, false on the right.  Any
// failure rejects the record (the caller recomputes from scratch).
func (s *Session) replayEvidenceRecord(ctx context.Context, t family.Topology, small, large int, rec *store.EvidenceRecord) (*Evidence, error) {
	pair := bisim.IndexPair{I: rec.I, I2: rec.I2}
	ev := &bisim.Evidence{
		Reason:     bisim.EvidenceReason(rec.Reason),
		LeftState:  kripke.State(rec.LeftState),
		RightState: kripke.State(rec.RightState),
		GameSide:   rec.GameSide,
		GameLoop:   rec.GameLoop,
	}
	for _, q := range rec.GamePath {
		ev.GamePath = append(ev.GamePath, kripke.State(q))
	}
	if rec.Formula == "" {
		// Only an IN-totality failure carries no formula; anything else
		// without one is a malformed record.
		if ev.Reason != bisim.ReasonIndexRelation {
			return nil, fmt.Errorf("podc: stored evidence has reason %q but no formula", rec.Reason)
		}
		return wrapRawEvidence(ev, pair, false), nil
	}
	f, err := logic.Parse(rec.Formula)
	if err != nil {
		return nil, fmt.Errorf("podc: re-parsing stored evidence formula: %w", err)
	}
	ev.Formula = f
	sm, err := s.topologyInstance(ctx, t, small)
	if err != nil {
		return nil, err
	}
	lg, err := s.topologyInstance(ctx, t, large)
	if err != nil {
		return nil, err
	}
	ev.Left = sm.raw().ReduceNormalized(rec.I)
	ev.Right = lg.raw().ReduceNormalized(rec.I2)
	if err := mc.ReplayEvidence(ctx, ev); err != nil {
		return nil, fmt.Errorf("podc: stored evidence rejected by replay: %w", err)
	}
	return wrapRawEvidence(ev, pair, true), nil
}
