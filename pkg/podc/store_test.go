package podc_test

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bisim"
	"repro/pkg/podc"
)

// The session-level verdict-store tests: a second session sharing the store
// directory must answer correspondences, certificates and evidence by pure
// replay (zero refinement computations), and every replayed artefact must
// survive its revalidation gate.

func TestSessionStoreReplaysCorrespondence(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	s1 := podc.NewSession(podc.WithStore(dir))
	first, err := s1.RingCorrespondence(ctx, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Corresponds() {
		t.Fatal("ring 3~5 must correspond")
	}
	if st, ok := s1.StoreStats(); !ok || st.Writes == 0 {
		t.Fatalf("first session did not populate the store (stats %+v, ok %v)", st, ok)
	}

	s2 := podc.NewSession(podc.WithStore(dir))
	before := bisim.ComputeCalls()
	second, err := s2.RingCorrespondence(ctx, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if delta := bisim.ComputeCalls() - before; delta != 0 {
		t.Fatalf("replaying session ran %d refinement computations, want 0", delta)
	}
	if second.Corresponds() != first.Corresponds() || second.MaxDegree() != first.MaxDegree() {
		t.Fatalf("replayed correspondence disagrees: corresponds %v/%v, max degree %d/%d",
			first.Corresponds(), second.Corresponds(), first.MaxDegree(), second.MaxDegree())
	}
	if len(second.IndexRelation()) != len(first.IndexRelation()) {
		t.Fatal("replayed correspondence lost index pairs")
	}
	if st, ok := s2.StoreStats(); !ok || st.Hits != 1 {
		t.Fatalf("replaying session stats = %+v, ok %v, want one hit", st, ok)
	}
}

func TestSessionStoreReplaysCertificate(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	s1 := podc.NewSession(podc.WithStore(dir))
	first, err := s1.RingTransferCertificate(ctx, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	firstJSON, err := json.Marshal(first)
	if err != nil {
		t.Fatal(err)
	}

	s2 := podc.NewSession(podc.WithStore(dir))
	before := bisim.ComputeCalls()
	second, err := s2.RingTransferCertificate(ctx, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if delta := bisim.ComputeCalls() - before; delta != 0 {
		t.Fatalf("certificate replay ran %d refinement computations, want 0 (validation re-checks clauses, it does not re-decide)", delta)
	}
	secondJSON, err := json.Marshal(second)
	if err != nil {
		t.Fatal(err)
	}
	if string(firstJSON) != string(secondJSON) {
		t.Fatalf("replayed certificate differs:\nfirst:  %s\nsecond: %s", firstJSON, secondJSON)
	}
}

func TestSessionStoreRejectsTamperedCertificate(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	s1 := podc.NewSession(podc.WithStore(dir))
	if _, err := s1.RingTransferCertificate(ctx, 3, 4); err != nil {
		t.Fatal(err)
	}
	// Corrupt every stored entry in place; the next session must detect the
	// damage, recompute, and still hand out a valid certificate.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no entries written")
	}
	for _, e := range entries {
		if err := os.WriteFile(filepath.Join(dir, e.Name()), []byte("{torn"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s2 := podc.NewSession(podc.WithStore(dir))
	cert, err := s2.RingTransferCertificate(ctx, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := cert.Validate(podc.TokenRingFamily()); err != nil {
		t.Fatalf("recomputed certificate invalid: %v", err)
	}
	st, ok := s2.StoreStats()
	if !ok || st.Invalid == 0 {
		t.Fatalf("damage not detected (stats %+v, ok %v)", st, ok)
	}
}

func TestSessionStoreReplaysEvidence(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	// Ring 2 vs 4 is below the corrected cutoff: the correspondence fails
	// and yields replay-confirmed distinguishing evidence.
	s1 := podc.NewSession(podc.WithStore(dir))
	first, err := s1.CorrespondenceEvidence(ctx, podc.RingTopology(), 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if first == nil {
		t.Fatal("ring 2~4 must fail and yield evidence")
	}
	if first.FormulaText == "" || !first.Confirmed {
		t.Fatalf("first evidence not confirmed: %s", first)
	}

	s2 := podc.NewSession(podc.WithStore(dir))
	before := bisim.ComputeCalls()
	second, err := s2.CorrespondenceEvidence(ctx, podc.RingTopology(), 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if delta := bisim.ComputeCalls() - before; delta != 0 {
		t.Fatalf("evidence replay ran %d refinement computations, want 0 (the verdict and the formula both come from the store)", delta)
	}
	if second == nil || second.String() != first.String() {
		t.Fatalf("replayed evidence differs:\nfirst:  %s\nsecond: %s", first, second)
	}
	if !second.Confirmed {
		t.Fatal("replayed evidence must be re-confirmed through the model checker")
	}
}

func TestSessionStoreOpenFailureDegradesGracefully(t *testing.T) {
	ctx := context.Background()
	// A file where the store directory should go: Open must fail, and the
	// session must keep answering without a store.
	blocker := filepath.Join(t.TempDir(), "blocker")
	if err := os.WriteFile(blocker, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	s := podc.NewSession(podc.WithStore(filepath.Join(blocker, "store")))
	corr, err := s.RingCorrespondence(ctx, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !corr.Corresponds() {
		t.Fatal("ring 3~4 must correspond")
	}
	if _, ok := s.StoreStats(); ok {
		t.Fatal("StoreStats must report no store after a failed open")
	}
}

func TestSessionWarmSweepMatchesColdSweep(t *testing.T) {
	ctx := context.Background()
	sizes := []int{4, 5, 6}

	collect := func(s *podc.Session) []podc.SweepResult {
		var rows []podc.SweepResult
		for row := range s.Sweep(ctx, sizes) {
			if row.Err != nil {
				t.Fatalf("n=%d: %v", row.R, row.Err)
			}
			rows = append(rows, row)
		}
		return rows
	}
	cold := collect(podc.NewSession())
	warm := collect(podc.NewSession(podc.WithWarmSweep()))
	if len(cold) != len(warm) {
		t.Fatalf("%d warm rows vs %d cold rows", len(warm), len(cold))
	}
	byR := make(map[int]podc.SweepResult, len(cold))
	for _, row := range cold {
		byR[row.R] = row
	}
	seeded := 0
	for _, row := range warm {
		c := byR[row.R]
		if row.Corresponds != c.Corresponds || row.States != c.States || row.MaxDegree != c.MaxDegree {
			t.Fatalf("warm n=%d disagrees with cold: %+v vs %+v", row.R, row, c)
		}
		if row.Seeded {
			seeded++
		}
	}
	if seeded == 0 {
		t.Fatal("no warm sweep row accepted its seed — the warm path never engaged")
	}
}

func TestSessionStoreSweepReplay(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	sizes := []int{4, 5, 6}

	run := func() []podc.SweepResult {
		s := podc.NewSession(podc.WithStore(dir))
		var rows []podc.SweepResult
		for row := range s.Sweep(ctx, sizes) {
			if row.Err != nil {
				t.Fatalf("n=%d: %v", row.R, row.Err)
			}
			rows = append(rows, row)
		}
		return rows
	}
	first := run()
	for _, row := range first {
		if row.CacheHit {
			t.Fatalf("first sweep n=%d hit an empty store", row.R)
		}
	}
	before := bisim.ComputeCalls()
	second := run()
	if delta := bisim.ComputeCalls() - before; delta != 0 {
		t.Fatalf("sweep replay ran %d refinement computations, want 0", delta)
	}
	for _, row := range second {
		if !row.CacheHit {
			t.Fatalf("replay sweep n=%d missed the store", row.R)
		}
	}
}
