package podc

import (
	"fmt"

	"repro/internal/process"
)

// This file exposes the substrate for building families of networks of
// identical finite-state processes: describe one process as a
// ProcessTemplate, compose N copies with guarded-command rules in a
// Network, and build the global Kripke structure.  It is how new families
// beyond the token ring (see examples/resourcepool) enter the methodology.

// ProcessTemplate describes one finite-state process of a family.
type ProcessTemplate struct {
	// Name identifies the template (used in structure names).
	Name string
	// States lists the local state names.
	States []string
	// Initial is the initial local state; it must appear in States.
	Initial string
	// Labels maps a local state to the indexed proposition names emitted
	// by a process in that state: a process i in local state ls satisfies
	// prop[i] for every prop in Labels[ls].
	Labels map[string][]string
}

func (t *ProcessTemplate) raw() *process.Template {
	if t == nil {
		return nil
	}
	return &process.Template{
		Name:    t.Name,
		States:  t.States,
		Initial: t.Initial,
		Labels:  t.Labels,
	}
}

// NetworkView is a read-only snapshot of a global network state, passed to
// rule guards and updates.
type NetworkView struct {
	v process.View
}

// Local returns the local state of process i (1-based).
func (v NetworkView) Local(i int) string { return v.v.Local(i) }

// CountLocal returns how many processes are in the given local state.
func (v NetworkView) CountLocal(state string) int { return v.v.CountLocal(state) }

// NumProcesses returns the network size N.
func (v NetworkView) NumProcesses() int { return v.v.NumProcesses() }

// ProcessesIn returns the (1-based) processes in the given local state.
func (v NetworkView) ProcessesIn(state string) []int { return v.v.ProcessesIn(state) }

// Shared returns the value of a shared variable.
func (v NetworkView) Shared(name string) int { return v.v.Shared(name) }

// NetworkUpdate describes the effect of firing a rule: new local states for
// some processes (by process number) and new values for some shared
// variables; everything not mentioned keeps its value.
type NetworkUpdate struct {
	Locals map[int]string
	Shared map[string]int
}

func (u NetworkUpdate) raw() process.Update {
	return process.Update{Locals: u.Locals, Shared: u.Shared}
}

// NetworkRule is a guarded command instantiated for every process i in
// 1..N: when Guard(view, i) holds the rule can fire for process i,
// producing Apply's update.  Each firing is one global transition
// (interleaving semantics).
type NetworkRule struct {
	Name  string
	Guard func(v NetworkView, i int) bool
	Apply func(v NetworkView, i int) NetworkUpdate
}

// GlobalNetworkRule is a guarded command not attached to a particular
// process (e.g. "the environment resets the bus").
type GlobalNetworkRule struct {
	Name  string
	Guard func(v NetworkView) bool
	Apply func(v NetworkView) NetworkUpdate
}

// SharedVariable declares a bounded shared integer variable of the network.
type SharedVariable struct {
	Name    string
	Initial int
	// Max, when positive, declares an inclusive upper bound on the values
	// the variable takes (values must stay in [0, Max]).  When every shared
	// variable is bounded, the state-space builder packs global states into
	// machine words instead of strings, which makes exploration markedly
	// faster; a rule that drives a bounded variable outside its range makes
	// Build fail.  Zero leaves the variable unbounded.
	Max int
}

// Network is a family member: N identical processes plus shared variables
// and rules.
type Network struct {
	Template *ProcessTemplate
	N        int
	Shared   []SharedVariable
	Rules    []NetworkRule
	Globals  []GlobalNetworkRule
	// GlobalProps, when non-nil, adds plain (non-indexed) propositions to
	// each global state.
	GlobalProps func(v NetworkView) []string
	// InitialLocal, when non-nil, overrides the template's initial state
	// per process (e.g. "process 1 starts with the token").
	InitialLocal func(i int) string
	// MaxStates caps the number of reachable global states generated; 0
	// means the default of 1,000,000.  Exceeding the cap is an error: the
	// caller asked for an instance too large to build explicitly.
	MaxStates int
}

func (n *Network) raw() *process.Network {
	net := &process.Network{
		Template: n.Template.raw(),
		N:        n.N,
	}
	for _, sv := range n.Shared {
		net.Shared = append(net.Shared, process.SharedVar{Name: sv.Name, Initial: sv.Initial, Max: sv.Max})
	}
	for _, r := range n.Rules {
		r := r
		net.Rules = append(net.Rules, process.Rule{
			Name:  r.Name,
			Guard: func(v process.View, i int) bool { return r.Guard(NetworkView{v: v}, i) },
			Apply: func(v process.View, i int) process.Update { return r.Apply(NetworkView{v: v}, i).raw() },
		})
	}
	for _, g := range n.Globals {
		g := g
		net.Globals = append(net.Globals, process.GlobalRule{
			Name:  g.Name,
			Guard: func(v process.View) bool { return g.Guard(NetworkView{v: v}) },
			Apply: func(v process.View) process.Update { return g.Apply(NetworkView{v: v}).raw() },
		})
	}
	if n.GlobalProps != nil {
		gp := n.GlobalProps
		net.GlobalProps = func(v process.View) []string { return gp(NetworkView{v: v}) }
	}
	net.InitialLocal = n.InitialLocal
	return net
}

// Build explores the reachable global state space breadth-first and
// returns the network's Kripke structure, labelled with the indexed
// propositions of every process.  An optional name overrides the generated
// structure name.
func (n *Network) Build(name string) (*Structure, error) {
	if n == nil || n.Template == nil {
		return nil, fmt.Errorf("podc: Network.Build: nil network or template")
	}
	m, err := n.raw().BuildKripke(process.BuildOptions{MaxStates: n.MaxStates, Name: name})
	if err != nil {
		return nil, err
	}
	return wrapStructure(m), nil
}
