package podc_test

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/pkg/podc"
)

func TestSessionCachesRingsAndVerifiers(t *testing.T) {
	ctx := context.Background()
	s := podc.NewSession(podc.WithWorkers(2))
	r1, err := s.Ring(ctx, 4)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Ring(ctx, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("Session.Ring must return the cached instance")
	}
	v1, err := s.RingVerifier(ctx, 4)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := s.RingVerifier(ctx, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Error("Session.RingVerifier must return the cached verifier")
	}
	holds, err := s.CheckRing(ctx, 4, podc.MustParseFormula("forall i . AG (d[i] -> AF c[i])"))
	if err != nil || !holds {
		t.Errorf("liveness on M_4 = %v, %v", holds, err)
	}
}

func TestSessionDeduplicatesConcurrentCorrespondences(t *testing.T) {
	ctx := context.Background()
	s := podc.NewSession(podc.WithWorkers(2))
	const clients = 8
	results := make([]*podc.IndexedCorrespondence, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			corr, err := s.RingCorrespondence(ctx, 3, 6)
			if err != nil {
				t.Error(err)
				return
			}
			results[c] = corr
		}(c)
	}
	wg.Wait()
	for c := 1; c < clients; c++ {
		if results[c] != results[0] {
			t.Fatalf("client %d got a different object — computation was not shared", c)
		}
	}
	if !results[0].Corresponds() {
		t.Error("M_3 ~ M_6 must hold")
	}
}

func TestSessionWaiterSurvivesCreatorCancellation(t *testing.T) {
	s := podc.NewSession(podc.WithWorkers(2))
	creatorCtx, cancelCreator := context.WithCancel(context.Background())
	creatorDone := make(chan error, 1)
	go func() {
		_, err := s.RingCorrespondence(creatorCtx, 3, 9)
		creatorDone <- err
	}()
	time.Sleep(2 * time.Millisecond) // let the creator claim the flight
	waiterDone := make(chan error, 1)
	go func() {
		_, err := s.RingCorrespondence(context.Background(), 3, 9)
		waiterDone <- err
	}()
	time.Sleep(2 * time.Millisecond)
	cancelCreator()
	<-creatorDone // cancelled or completed; either is fine
	// The healthy waiter must not inherit the creator's context error: it
	// retries and gets a real result.
	if err := <-waiterDone; err != nil {
		t.Fatalf("healthy waiter failed after creator cancellation: %v", err)
	}
}

func TestBuildRingTooLargeIsTyped(t *testing.T) {
	if _, err := podc.BuildRing(25); !errors.Is(err, podc.ErrTooLarge) {
		t.Errorf("BuildRing(25) err = %v, want podc.ErrTooLarge", err)
	}
}

func TestSessionFailedComputationIsRetried(t *testing.T) {
	s := podc.NewSession()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.RingCorrespondence(ctx, 3, 6); err == nil {
		t.Fatal("cancelled computation should fail")
	}
	// The failure must not be cached.
	corr, err := s.RingCorrespondence(context.Background(), 3, 6)
	if err != nil {
		t.Fatalf("retry after cancellation failed: %v", err)
	}
	if !corr.Corresponds() {
		t.Error("M_3 ~ M_6 must hold on retry")
	}
}

func TestSessionNamedStructures(t *testing.T) {
	s := podc.NewSession()
	m, err := podc.ParseStructure("structure tiny\nstate 0 initial : p\ntrans 0 0\n")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddStructure("tiny", m); err != nil {
		t.Fatal(err)
	}
	got, ok := s.StructureByName("tiny")
	if !ok || got != m {
		t.Error("registered structure not found")
	}
	if err := s.AddStructure("", m); err == nil {
		t.Error("empty name must be rejected")
	}
}

func TestSessionSweepStreamsAndStopsEarly(t *testing.T) {
	ctx := context.Background()
	s := podc.NewSession(podc.WithWorkers(2))
	// Full run: all sizes arrive.
	seen := map[int]bool{}
	for row := range s.Sweep(ctx, []int{4, 5, 6}) {
		if row.Err != nil {
			t.Fatalf("r=%d: %v", row.R, row.Err)
		}
		if !row.Corresponds {
			t.Errorf("r=%d should correspond", row.R)
		}
		seen[row.R] = true
	}
	if len(seen) != 3 {
		t.Fatalf("expected 3 rows, got %v", seen)
	}

	// Early break: the iterator must stop and the pool wind down.
	baseline := runtime.NumGoroutine()
	got := 0
	for range s.Sweep(ctx, []int{4, 5, 6, 7, 8, 9}) {
		got++
		break
	}
	if got != 1 {
		t.Fatalf("broke after one row but saw %d", got)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("sweep pool leaked goroutines: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// A summary table from collected rows.
	var rows []podc.SweepResult
	for row := range s.Sweep(ctx, []int{4, 5}) {
		rows = append(rows, row)
	}
	tbl := podc.SweepResultsTable(rows)
	if len(tbl.Rows) != 2 {
		t.Errorf("summary table has %d rows, want 2", len(tbl.Rows))
	}
}

func TestSessionExperimentCachedAndStreamed(t *testing.T) {
	ctx := context.Background()
	s := podc.NewSession(podc.WithWorkers(2))
	t1, err := s.Experiment(ctx, "E1")
	if err != nil {
		t.Fatal(err)
	}
	if t1.ID != "E1" || len(t1.Rows) == 0 {
		t.Fatalf("bad table: %+v", t1)
	}
	t2, err := s.Experiment(ctx, "E1")
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Error("experiment table must be cached")
	}
	if _, err := s.Experiment(ctx, "E99"); err == nil {
		t.Error("unknown experiment must fail")
	}
	// Compound identifier halves resolve.
	if _, err := s.Experiment(ctx, "E4"); err != nil {
		t.Errorf("E4 should resolve to the E4/E5 job: %v", err)
	}
	if ids := s.CachedExperimentIDs(); len(ids) < 2 {
		t.Errorf("expected cached ids, got %v", ids)
	}

	// Streaming: unknown ids yield error results, known ids yield tables.
	var okIDs, errIDs int
	for o := range s.Experiments(ctx, []string{"E1", "bogus", "E3"}) {
		if o.Err != nil {
			errIDs++
		} else {
			okIDs++
		}
	}
	if okIDs != 2 || errIDs != 1 {
		t.Errorf("streamed %d ok / %d err, want 2 / 1", okIDs, errIDs)
	}
	if got := len(podc.ExperimentIDs()); got != 10 {
		t.Errorf("standard battery has %d entries, want 10 (E1..E10)", got)
	}
}

func TestSessionTransferCertificateCached(t *testing.T) {
	ctx := context.Background()
	s := podc.NewSession(podc.WithWorkers(2))
	c1, err := s.RingTransferCertificate(ctx, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s.RingTransferCertificate(ctx, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("certificate must be cached")
	}
	if c1.SmallSize() != 3 || c1.LargeSize() != 4 {
		t.Errorf("certificate sizes (%d, %d)", c1.SmallSize(), c1.LargeSize())
	}
}
