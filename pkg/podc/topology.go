package podc

import (
	"context"
	"fmt"

	"repro/internal/family"
)

// This file surfaces the topology-parametric family engine of
// internal/family: the paper's verify-small / correspond / transfer-by-
// Theorem-5 methodology for star, line, binary-tree and 2D-torus families
// in addition to the Section 5 token ring.  A Topology bundles everything
// the methodology needs — an instance generator, the inductive index
// relation, the cutoff heuristic, the vocabulary and the specifications —
// and WithTopology routes DecideCorrespondence, Session caches and the
// HTTP service's /v1/correspond endpoint to the selected family.

// Topology is one parameterized family of networks of identical processes:
// the token ring of Section 5, or one of the generalised
// token-circulation families (star, line, tree, torus).
type Topology struct {
	t family.Topology
}

// RingTopology returns the paper's Section 5 token ring (the request/grant
// protocol with its corrected three-process cutoff).
func RingTopology() Topology { return Topology{t: family.Ring()} }

// StarTopology returns the star family: process 1 is the hub, all other
// processes are leaves, and the token shuttles hub → leaf → hub.
func StarTopology() Topology { return Topology{t: family.Star()} }

// LineTopology returns the line (open chain) family: the token wanders
// along a path whose two ends are distinguished.
func LineTopology() Topology { return Topology{t: family.Line()} }

// TreeTopology returns the binary-tree family: processes in heap order,
// the token wandering along tree edges from the root.
func TreeTopology() Topology { return Topology{t: family.Tree()} }

// TorusTopology returns the 2D-torus family: n processes on a 2 × (n/2)
// torus, so only even sizes are valid.
func TorusTopology() Topology { return Topology{t: family.Torus()} }

// Torus3Topology returns the 3-row 2D-torus family: n processes on a
// 3 × (n/3) torus, so only multiples of three are valid.  Its n = 12
// instance is the 3×4 torus of the default sweep.
func Torus3Topology() Topology { return Topology{t: family.Torus3()} }

// DefaultSweepSizes returns the sizes the default sweep covers — up to the
// 21-million-state r = 20 ring.  Sizes whose state spaces fit the decide
// budget (the r = 14 ring and below) decide the cutoff correspondence;
// larger sizes come back as build-only rows, with the raw space explored by
// the parallel packed-BFS engine, the reachable set checked for orbit
// closure and the symmetry quotient's orbit count reported — so the sweep
// still finishes within a CI-friendly budget.  Sizes a topology cannot
// instantiate are skipped per topology, as with any sweep.
func DefaultSweepSizes() []int { return []int{4, 6, 8, 10, 12, 14, 16, 18, 20} }

// Topologies returns every built-in topology, the ring first.
func Topologies() []Topology {
	raw := family.Topologies()
	out := make([]Topology, len(raw))
	for i, t := range raw {
		out[i] = Topology{t: t}
	}
	return out
}

// TopologyNames returns the names of the built-in topologies, in
// Topologies order.
func TopologyNames() []string { return family.Names() }

// TopologyByName resolves a built-in topology by its name ("ring",
// "star", "line", "tree", "torus").
func TopologyByName(name string) (Topology, bool) {
	t, ok := family.ByName(name)
	if !ok {
		return Topology{}, false
	}
	return Topology{t: t}, true
}

// IsValid reports whether the topology was obtained from a constructor or
// a successful lookup (the zero Topology is invalid).
func (t Topology) IsValid() bool { return t.t != nil }

// Name returns the topology's name.
func (t Topology) Name() string {
	if t.t == nil {
		return ""
	}
	return t.t.Name()
}

// String returns the topology's name.
func (t Topology) String() string { return t.Name() }

// MinSize returns the smallest size for which an instance exists.
func (t Topology) MinSize() int { return t.t.MinSize() }

// CutoffSize returns the topology's small-size heuristic: the size of the
// instance that represents all larger instances (machine-checked for every
// size the decision procedure can reach).
func (t Topology) CutoffSize() int { return t.t.CutoffSize() }

// ValidSize reports whether an instance of size n exists (nil) or why not.
func (t Topology) ValidSize(n int) error { return t.t.ValidSize(n) }

// Atoms lists the indexed propositions whose "exactly one" atoms are part
// of the family's vocabulary.
func (t Topology) Atoms() []string { return append([]string(nil), t.t.Atoms()...) }

// Build constructs the instance M_n explicitly.
func (t Topology) Build(n int) (*Structure, error) {
	m, err := t.t.Build(n)
	if err != nil {
		return nil, err
	}
	return wrapStructure(m), nil
}

// IndexRelation returns the IN relation between the index sets of M_small
// and M_n — the topology's inductive step.
func (t Topology) IndexRelation(small, n int) []IndexPair {
	return indexPairsFromRaw(t.t.IndexRelation(small, n))
}

// Specs returns the family's ICTL* specifications, ready for VerifyFamily.
func (t Topology) Specs() []Spec {
	raw := t.t.Specs()
	out := make([]Spec, len(raw))
	for i, s := range raw {
		out[i] = Spec{Name: s.Name, Formula: wrapFormula(s.Formula)}
	}
	return out
}

// Family adapts the topology to the Family interface, so VerifyFamily and
// BuildTransferCertificate work with any topology.
func (t Topology) Family() Family {
	topo := t.t
	return &FamilyFunc{
		FamilyName: topo.Name(),
		BuildFunc: func(n int) (*Structure, error) {
			m, err := topo.Build(n)
			if err != nil {
				return nil, err
			}
			return wrapStructure(m), nil
		},
		Indices: func(small, n int) []IndexPair {
			return indexPairsFromRaw(topo.IndexRelation(small, n))
		},
		AtomNames: topo.Atoms(),
	}
}

// DecideCorrespondence builds the configured topology's instances of the
// two sizes (WithTopology; the token ring when no topology is given) and
// decides their canonical indexed correspondence — the per-topology
// dispatch point the sweeps, the HTTP service and the examples share.
// Cancelling ctx stops the decision procedure promptly.
func DecideCorrespondence(ctx context.Context, small, large int, opts ...Option) (*IndexedCorrespondence, error) {
	cfg := buildConfig(opts)
	topo, err := cfg.topologyOrError()
	if err != nil {
		return nil, err
	}
	if small > large {
		return nil, fmt.Errorf("podc: DecideCorrespondence: need small <= large, got %d > %d", small, large)
	}
	out := &IndexedCorrespondence{in: indexPairsFromRaw(topo.IndexRelation(small, large))}
	if cfg.evidence {
		res, fev, err := family.DecideWithEvidence(ctx, topo, small, large)
		if err != nil {
			return nil, err
		}
		out.res = res
		out.ev = evidenceFromFamily(fev)
		return out, nil
	}
	res, err := family.DecideCorrespondence(ctx, topo, small, large)
	if err != nil {
		return nil, err
	}
	out.res = res
	return out, nil
}

// raw returns the wrapped internal topology, defaulting to the ring for
// the zero value.
func (t Topology) raw() family.Topology {
	if t.t == nil {
		return family.Ring()
	}
	return t.t
}
