package podc

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/kripke"
	"repro/internal/mc"
)

// Verifier model checks formulas against one structure.  Satisfaction sets
// are memoised per subformula, so repeated queries against the same
// structure are cheap; a Verifier is safe for concurrent use (queries are
// serialised internally so they can share the memo table).
//
// With WithMinimize the verifier first quotients the structure by its
// verified maximal self-correspondence, which preserves all CTL* (no
// nexttime) answers while shrinking the state space.
type Verifier struct {
	mu       sync.Mutex
	checker  *mc.Checker
	original *Structure
	checked  *Structure
	min      bool
}

// NewVerifier returns a Verifier for m.  When WithMinimize is given the
// quotient is computed under ctx (it runs the correspondence engine, so it
// is cancellable); other options select the comparison vocabulary used by
// the quotient.
func NewVerifier(ctx context.Context, m *Structure, opts ...Option) (*Verifier, error) {
	return newVerifier(ctx, m, buildConfig(opts))
}

func newVerifier(ctx context.Context, m *Structure, cfg config) (*Verifier, error) {
	if m == nil || m.raw() == nil {
		return nil, fmt.Errorf("podc: NewVerifier: nil structure")
	}
	v := &Verifier{original: m, checked: m}
	if cfg.minimize {
		checker, minres, err := mc.NewMinimized(ctx, m.raw(), cfg.bisimOptions())
		if err != nil && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		v.checker = checker
		if minres != nil {
			v.checked = wrapStructure(minres.Quotient)
			v.min = true
		}
	} else {
		v.checker = mc.New(m.raw())
	}
	// WithWorkers(n > 1) also unlocks the checker's word-at-a-time worker
	// pools (frontier gathers, packed tableau passes); answers are identical
	// at every setting.
	if v.checker != nil {
		v.checker.SetWorkers(cfg.workers)
	}
	return v, nil
}

// Structure returns the structure the verifier actually checks: the
// quotient when minimization succeeded, the original otherwise.
func (v *Verifier) Structure() *Structure { return v.checked }

// Original returns the structure the verifier was created for.
func (v *Verifier) Original() *Structure { return v.original }

// Minimized reports whether the verifier checks a verified quotient.
func (v *Verifier) Minimized() bool { return v.min }

// Check reports whether the closed formula f holds in the initial state.
func (v *Verifier) Check(ctx context.Context, f Formula) (bool, error) {
	if !f.IsValid() {
		return false, errInvalidFormula()
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.checker.Holds(ctx, f.raw())
}

// CheckAt reports whether f holds at state s.
func (v *Verifier) CheckAt(ctx context.Context, f Formula, s State) (bool, error) {
	if !f.IsValid() {
		return false, errInvalidFormula()
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.checker.HoldsAt(ctx, f.raw(), kripke.State(s))
}

// CountSat returns how many states satisfy f.
func (v *Verifier) CountSat(ctx context.Context, f Formula) (int, error) {
	if !f.IsValid() {
		return 0, errInvalidFormula()
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.checker.CountSat(ctx, f.raw())
}

// SatStates returns the states satisfying f in increasing order.
func (v *Verifier) SatStates(ctx context.Context, f Formula) ([]State, error) {
	if !f.IsValid() {
		return nil, errInvalidFormula()
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	ss, err := v.checker.SatStates(ctx, f.raw())
	if err != nil {
		return nil, err
	}
	return statesFromRaw(ss), nil
}

// Witness returns a trace demonstrating that the existential CTL formula f
// holds in the initial state (EX g, EF g, E[g U h], EG g shapes, possibly
// under instantiated indexed quantifiers).
func (v *Verifier) Witness(ctx context.Context, f Formula) (*Trace, error) {
	if !f.IsValid() {
		return nil, errInvalidFormula()
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	tr, err := v.checker.Witness(ctx, f.raw(), v.checker.Structure().Initial())
	if err != nil {
		return nil, err
	}
	return wrapTrace(tr, v.checker.Structure()), nil
}

// Counterexample returns a trace demonstrating that the universal CTL
// formula f fails in the initial state (AG g, AF g, A[g U h], AX g shapes).
func (v *Verifier) Counterexample(ctx context.Context, f Formula) (*Trace, error) {
	if !f.IsValid() {
		return nil, errInvalidFormula()
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	tr, err := v.checker.Counterexample(ctx, f.raw(), v.checker.Structure().Initial())
	if err != nil {
		return nil, err
	}
	return wrapTrace(tr, v.checker.Structure()), nil
}

// Trace is a finite path through a structure, possibly ending in a loop
// back to the state at index LoopStart (LoopStart < 0 means a plain finite
// path).  Traces are produced as witnesses and counterexamples.
type Trace struct {
	// States is the sequence of visited states.
	States []State
	// LoopStart is the index the trailing loop re-enters, or -1.
	LoopStart int

	text string
}

func wrapTrace(mt *mc.Trace, m *kripke.Structure) *Trace {
	if mt == nil {
		return nil
	}
	return &Trace{
		States:    statesFromRaw(mt.States),
		LoopStart: mt.LoopStart,
		text:      mt.Format(m),
	}
}

// IsLasso reports whether the trace ends in a loop.
func (t *Trace) IsLasso() bool { return t != nil && t.LoopStart >= 0 }

// String renders the trace with each state's label, in the form the command
// line tools print.
func (t *Trace) String() string {
	if t == nil {
		return "<no trace>"
	}
	return t.text
}
