package podc

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/ring"
)

// This file exposes the paper's Section 5 case study — the token-ring
// mutual-exclusion protocol — through the public API: building instances,
// the Section 5 specifications, the canonical correspondences, and the
// "local" clause checker that refutes the Appendix relation at rings far
// too large to construct explicitly.

// RingCutoffSize is the smallest ring that represents all larger rings.
// The reproduction shows that the paper's cutoff of two processes is too
// small (RingDistinguishingFormula separates M_2 from every larger ring)
// and that three processes suffice for every size the decision procedure
// can reach.
const RingCutoffSize = ring.CutoffSize

// RingTokenAtom is the indexed proposition marking the token holder; ring
// correspondences are decided with WithAtoms(RingTokenAtom) so that
// "exactly one process holds the token" is part of the compared vocabulary.
const RingTokenAtom = ring.PropToken

// ErrTooLarge marks build refusals for instances whose state space exceeds
// the explicit-construction limit (test with errors.Is).  Such requests can
// never succeed — that regime is exactly what the correspondence theorem
// and RingLocalCheck exist for — so services should report them as client
// errors, not server failures.
var ErrTooLarge error = ring.ErrTooLarge

// Ring is a fully built instance M_r of the token-ring protocol: the
// Kripke structure (the reachable restriction of the global transition
// graph G_r) plus ring-level metadata.
type Ring struct {
	inst *ring.Instance
}

// BuildRing constructs M_r explicitly.  It refuses sizes whose reachable
// state space (r·2^r states) exceeds the explicit-construction budget —
// which is exactly the situation the correspondence theorem is for.
func BuildRing(r int) (*Ring, error) {
	inst, err := ring.Build(r)
	if err != nil {
		return nil, err
	}
	return &Ring{inst: inst}, nil
}

// BuildBuggyRing constructs the deliberately broken protocol variant used
// to demonstrate counterexample extraction.
func BuildBuggyRing(r int) (*Ring, error) {
	inst, err := ring.BuildBuggy(r)
	if err != nil {
		return nil, err
	}
	return &Ring{inst: inst}, nil
}

// Size returns the number of processes.
func (r *Ring) Size() int { return r.inst.R }

// Structure returns the Kripke structure M_r.
func (r *Ring) Structure() *Structure { return wrapStructure(r.inst.M) }

// CheckPartitionInvariant verifies structurally (without model checking)
// that every reachable state partitions the processes into the paper's
// D/N/T/C parts with exactly one token holder.
func (r *Ring) CheckPartitionInvariant() error { return r.inst.CheckPartitionInvariant() }

// RingInvariants returns the Section 5 invariants (I1..I4) as specs.
func RingInvariants() []Spec { return namedFormulasToSpecs(ring.Invariants()) }

// RingProperties returns the four Section 5 correctness properties
// (mutual exclusion, token-based entry, stable requests, liveness).
func RingProperties() []Spec { return namedFormulasToSpecs(ring.Properties()) }

func namedFormulasToSpecs(nfs []ring.NamedFormula) []Spec {
	out := make([]Spec, len(nfs))
	for i, nf := range nfs {
		out[i] = Spec{Name: nf.Name, Formula: wrapFormula(nf.Formula)}
	}
	return out
}

// RingDistinguishingFormula returns the closed *restricted* ICTL* formula
// of the reproduction finding,
//
//	∨i EF( d_i ∧ E[ d_i U (c_i ∧ ¬E[c_i U (t_i ∧ n_i)]) ] )
//
// which is false in M_2 but true in every M_r with r ≥ 3 — proving, via
// Theorem 5, that the paper's two-process cutoff claim cannot hold and a
// three-process cutoff is needed.
func RingDistinguishingFormula() Formula { return wrapFormula(ring.DistinguishingFormula()) }

// RingIndexRelation returns the canonical IN relation for comparing
// M_small with M_r: the paper's Section 5 relation for small = 2 (the claim
// under refutation) and the corrected cutoff relation otherwise.
func RingIndexRelation(small, large int) []IndexPair {
	return indexPairsFromRaw(ring.IndexRelationFor(small, large))
}

// RingCorrespondence decides the indexed correspondence between two
// explicitly built ring instances with the canonical IN relation and
// vocabulary ("exactly one token", totality over reachable states).  It is
// the entry point the sweeps, the HTTP service and the examples share.
func RingCorrespondence(ctx context.Context, small, large *Ring) (*IndexedCorrespondence, error) {
	if small == nil || large == nil {
		return nil, fmt.Errorf("podc: RingCorrespondence: nil ring instance")
	}
	in := ring.IndexRelationFor(small.inst.R, large.inst.R)
	res, err := ring.DecideCorrespondence(ctx, small.inst, large.inst)
	if err != nil {
		return nil, err
	}
	return &IndexedCorrespondence{res: res, in: indexPairsFromRaw(in)}, nil
}

// TokenRingFamily returns the token ring as a Family, with the corrected
// cutoff index relation, ready for VerifyFamily and transfer certificates.
// It is equivalent to RingTopology().Family(); the Topology route
// additionally carries the cutoff heuristic and the Section 5 specs.
func TokenRingFamily() Family {
	return &FamilyFunc{
		FamilyName: "token-ring",
		BuildFunc: func(n int) (*Structure, error) {
			inst, err := ring.Build(n)
			if err != nil {
				return nil, err
			}
			return wrapStructure(inst.M), nil
		},
		Indices: func(small, n int) []IndexPair {
			return indexPairsFromRaw(ring.CutoffIndexRelation(small, n))
		},
		AtomNames: []string{ring.PropToken},
	}
}

// RingRelationVariant selects which printed Section 5 relation the local
// checker validates.
type RingRelationVariant int

const (
	// RingPaperRelation is the relation exactly as printed in Section 5.
	RingPaperRelation RingRelationVariant = iota
	// RingCorrectedRelation strengthens the side condition to all token
	// holders, repairing the Appendix's case 2(b) gap (but not the cutoff
	// claim itself).
	RingCorrectedRelation
)

// String names the variant.
func (v RingRelationVariant) String() string { return v.raw().String() }

func (v RingRelationVariant) raw() ring.RelationVariant {
	if v == RingCorrectedRelation {
		return ring.CorrectedRelation
	}
	return ring.PaperRelation
}

// RingLocalCheckReport summarises a local clause-checking run: the Section 5
// relation validated clause by clause at sampled states of an r-process
// ring whose state graph (r·2^r states) is never built.
type RingLocalCheckReport struct {
	// Variant names the relation variant checked.
	Variant string `json:"variant"`
	// RingSize is the number of processes of the virtual large ring.
	RingSize int `json:"ring_size"`
	// SampledStates is the number of reachable states sampled.
	SampledStates int `json:"sampled_states"`
	// PairsChecked counts the (state, index pair) clause checks performed.
	PairsChecked int `json:"pairs_checked"`
	// Violations counts the clause violations found; any positive count
	// machine-refutes the relation at this ring size.
	Violations int `json:"violations"`
	// FirstViolation describes one violation (empty when none were found).
	FirstViolation string `json:"first_violation,omitempty"`
}

// RingLocalCheck validates the chosen variant of the Section 5 relation
// between M_2 and the r-process ring at sampled reachable states, without
// ever materialising the large ring.  Sampling is deterministic in seed.
// Cancelling ctx aborts the sweep between samples.
func RingLocalCheck(ctx context.Context, variant RingRelationVariant, ringSize, samples int, seed int64) (*RingLocalCheckReport, error) {
	if samples <= 0 {
		samples = 25
	}
	small, err := ring.Build(2)
	if err != nil {
		return nil, err
	}
	lc, err := ring.NewLocalChecker(variant.raw(), small, ringSize)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	next := func(n int) int { return rng.Intn(n) }
	// The known failure shapes first (a token holder with everyone queued
	// behind it), then random samples: purely random states rarely hit the
	// Appendix's case-2(b) gap, so a refutation sweep that skipped these
	// would under-report.
	states := craftedRingStates(ringSize)
	for len(states) < samples {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		states = append(states, ring.RandomReachableState(ringSize, next))
	}
	rep := &RingLocalCheckReport{Variant: variant.String(), RingSize: ringSize, SampledStates: len(states)}
	for _, g := range states {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		default:
		}
		for _, pair := range [][2]int{{1, 1}, {2, 2 + next(ringSize-1)}} {
			vs := lc.CheckState(g, pair[0], pair[1])
			rep.PairsChecked++
			rep.Violations += len(vs)
			if len(vs) > 0 && rep.FirstViolation == "" {
				rep.FirstViolation = vs[0].Error()
			}
		}
	}
	return rep, nil
}

// craftedRingStates returns the reachable states at which the printed
// Section 5 relation is known to break: the initial holder with every other
// process delayed, and a holder with delayed processes queued behind it.
func craftedRingStates(r int) []ring.GlobalState {
	if r < 3 {
		return nil
	}
	allDelayed := ring.GlobalState{Parts: make([]ring.Part, r)}
	allDelayed.Parts[0] = ring.Token
	for i := 1; i < r; i++ {
		allDelayed.Parts[i] = ring.Delayed
	}
	queued := ring.GlobalState{Parts: make([]ring.Part, r)}
	queued.Parts[1] = ring.Token
	queued.Parts[0] = ring.Delayed
	queued.Parts[2] = ring.Delayed
	return []ring.GlobalState{allDelayed, queued}
}
