// Package podc is the public API of the repro library: a reproduction of
// Browne, Clarke and Grumberg, "Reasoning about Networks with Many Identical
// Finite State Processes" (PODC 1986; Information and Computation 81, 1989).
//
// The package wraps the internal engines — Kripke structures, the CTL*/ICTL*
// model checker, the stuttering-correspondence decision procedure and the
// parameterized-verification methodology — behind a small set of stable
// types:
//
//   - Structure and Builder construct, parse and serialise Kripke
//     structures (the labelled transition graphs of Section 2);
//   - Formula parses and classifies CTL*/ICTL* specifications;
//   - Verifier model checks formulas against one structure, optionally
//     after quotienting it by its verified self-correspondence
//     (WithMinimize);
//   - Correspond / IndexedCorrespond decide the stuttering correspondence
//     of Section 3 and its indexed variant of Section 4, the relations that
//     transfer CTL* (no nexttime) truth between structures of different
//     sizes (Theorems 2 and 5);
//   - Family and VerifyFamily run the paper's three-step methodology
//     (check a small instance, establish the correspondence, conclude for
//     every size) and produce portable TransferCertificates;
//   - Session is the serving-side entry point: a long-lived, concurrency-safe
//     cache of built structures, verifiers and decided correspondences with
//     streaming (iter.Seq) delivery of sweeps and experiment tables.
//
// Every potentially long-running operation takes a context.Context and
// returns promptly with the context's error once it is cancelled or its
// deadline passes; the internal engines poll the context at pass boundaries,
// so cancellation reaches even a correspondence computation that is deep in
// its refinement loop.
//
// Behaviour is configured with functional options (WithWorkers,
// WithMinimize, WithAtoms, ...) rather than option structs; unknown
// combinations are diagnosed by the constructors.
//
// The command line tools under cmd/ and the runnable examples under
// examples/ are all written against this package; cmd/podcserve exposes the
// same operations as an HTTP/JSON service.
package podc
