// Package podc is the public API of the repro library: a reproduction of
// Browne, Clarke and Grumberg, "Reasoning about Networks with Many Identical
// Finite State Processes" (PODC 1986; Information and Computation 81, 1989),
// generalised from the paper's token ring to a topology-parametric family
// engine.
//
// The package wraps the internal engines — Kripke structures, the CTL*/ICTL*
// model checker, the stuttering-correspondence decision procedure and the
// parameterized-verification methodology — behind a small set of stable
// types:
//
//   - Structure and Builder construct, parse and serialise Kripke
//     structures (the labelled transition graphs of Section 2);
//   - Formula parses and classifies CTL*/ICTL* specifications;
//   - Verifier model checks formulas against one structure, optionally
//     after quotienting it by its verified self-correspondence
//     (WithMinimize);
//   - Correspond / IndexedCorrespond decide the stuttering correspondence
//     of Section 3 and its indexed variant of Section 4, the relations that
//     transfer CTL* (no nexttime) truth between structures of different
//     sizes (Theorems 2 and 5);
//   - Topology selects a parameterized family — the Section 5 token ring
//     (RingTopology) or one of the generalised token-circulation families
//     (StarTopology, LineTopology, TreeTopology, TorusTopology), all backed
//     by internal/family — bundling its instance generator, inductive index
//     relation, cutoff heuristic and specifications; WithTopology routes
//     DecideCorrespondence, Session caches and sweeps to the selected
//     family;
//   - Network and ProcessTemplate expose the guarded-command substrate for
//     defining new families beyond the built-in topologies;
//   - Family and VerifyFamily run the paper's three-step methodology
//     (check a small instance, establish the correspondence, conclude for
//     every size) and produce portable TransferCertificates — any
//     Topology adapts via its Family method;
//   - Session is the serving-side entry point: a long-lived, concurrency-safe
//     cache of built instances, verifiers, decided correspondences (keyed by
//     topology and sizes) and experiment tables, with streaming (iter.Seq)
//     delivery of sweeps and experiment batteries.
//
// Every potentially long-running operation takes a context.Context and
// returns promptly with the context's error once it is cancelled or its
// deadline passes; the internal engines poll the context at pass boundaries,
// so cancellation reaches even a correspondence computation that is deep in
// its refinement loop.
//
// Behaviour is configured with functional options (WithWorkers,
// WithMinimize, WithAtoms, WithTopology, ...) rather than option structs;
// options that do not apply to an operation are ignored.
//
// The command line tools under cmd/ and the runnable examples under
// examples/ are all written against this package; cmd/podcserve exposes the
// same operations as an HTTP/JSON service whose /v1/correspond and
// /v1/transfer endpoints dispatch on the request's topology field.  The
// Example functions in this package's test files are executed by go test,
// so the documented snippets cannot drift from the code; PAPER_MAP.md (repo
// root) maps every definition of the paper to its implementation.
package podc
