package podc_test

import (
	"context"
	"testing"

	"repro/pkg/podc"
)

// TestWithEvidenceIndexedCorrespond: the refuted M_2 vs M_3 ring
// correspondence carries confirmed evidence when requested, and none when
// not.
func TestWithEvidenceIndexedCorrespond(t *testing.T) {
	ctx := context.Background()
	m2, err := podc.BuildRing(2)
	if err != nil {
		t.Fatal(err)
	}
	m3, err := podc.BuildRing(3)
	if err != nil {
		t.Fatal(err)
	}
	in := podc.RingIndexRelation(2, 3)
	corr, err := podc.IndexedCorrespond(ctx, m2.Structure(), m3.Structure(), in,
		podc.WithAtoms("t"), podc.WithReachableOnly(), podc.WithEvidence())
	if err != nil {
		t.Fatal(err)
	}
	if corr.Corresponds() {
		t.Fatal("M_2 and M_3 must not indexed-correspond")
	}
	ev := corr.Evidence()
	if ev == nil {
		t.Fatal("WithEvidence produced no evidence for a failed correspondence")
	}
	if !ev.Confirmed || !ev.Formula.IsValid() {
		t.Fatalf("evidence not confirmed: %s", ev)
	}
	// Without the option, no evidence is attached.
	plain, err := podc.IndexedCorrespond(ctx, m2.Structure(), m3.Structure(), in,
		podc.WithAtoms("t"), podc.WithReachableOnly())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Evidence() != nil {
		t.Error("evidence attached without WithEvidence")
	}
}

// TestWithEvidenceBuggyRing: the acceptance case — a BuildBuggy ring fails
// its correspondence with the correct cutoff instance, and the returned
// evidence is replay-confirmed.
func TestWithEvidenceBuggyRing(t *testing.T) {
	ctx := context.Background()
	correct, err := podc.BuildRing(podc.RingCutoffSize)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []int{3, 4, 5} {
		buggy, err := podc.BuildBuggyRing(r)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := podc.ExplainRingCorrespondence(ctx, correct, buggy)
		if err != nil {
			t.Fatalf("r=%d: %v", r, err)
		}
		if ev == nil {
			t.Fatalf("r=%d: correct and buggy rings unexpectedly correspond", r)
		}
		if !ev.Confirmed {
			t.Fatalf("r=%d: evidence not confirmed: %s", r, ev)
		}
	}
}

// TestWithEvidenceDecideCorrespondence: the topology dispatch point
// attaches evidence for the ring refutation and none for a holding star
// correspondence.
func TestWithEvidenceDecideCorrespondence(t *testing.T) {
	ctx := context.Background()
	corr, err := podc.DecideCorrespondence(ctx, 2, 4, podc.WithEvidence())
	if err != nil {
		t.Fatal(err)
	}
	if corr.Corresponds() {
		t.Fatal("ring M_2 vs M_4 must not correspond")
	}
	if ev := corr.Evidence(); ev == nil || !ev.Confirmed {
		t.Fatalf("expected confirmed evidence, got %s", ev)
	}
	star, _ := podc.TopologyByName("star")
	ok, err := podc.DecideCorrespondence(ctx, 3, 5, podc.WithTopology(star), podc.WithEvidence())
	if err != nil {
		t.Fatal(err)
	}
	if !ok.Corresponds() || ok.Evidence() != nil {
		t.Fatalf("star M_3 vs M_5 should correspond without evidence, got %v / %s", ok.Corresponds(), ok.Evidence())
	}
}

// TestSessionCorrespondenceEvidence: the session serves evidence from its
// caches.
func TestSessionCorrespondenceEvidence(t *testing.T) {
	ctx := context.Background()
	s := podc.NewSession(podc.WithWorkers(2))
	ev, err := s.CorrespondenceEvidence(ctx, podc.RingTopology(), 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ev == nil || !ev.Confirmed {
		t.Fatalf("expected confirmed evidence for ring 2 vs 4, got %s", ev)
	}
	ok, err := s.CorrespondenceEvidence(ctx, podc.RingTopology(), 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ok != nil {
		t.Fatalf("no evidence expected for the holding 3 vs 4 correspondence, got %s", ok)
	}
}

// TestVerifierExplain: false universal verdicts come back with a
// counterexample trace, true existential ones with a witness.
func TestVerifierExplain(t *testing.T) {
	ctx := context.Background()
	rg, err := podc.BuildRing(3)
	if err != nil {
		t.Fatal(err)
	}
	v, err := podc.NewVerifier(ctx, rg.Structure())
	if err != nil {
		t.Fatal(err)
	}
	ex, err := v.Explain(ctx, podc.MustParseFormula("forall i . AG !c[i]"))
	if err != nil {
		t.Fatal(err)
	}
	if ex.Holds {
		t.Fatal("some process does reach its critical section")
	}
	if ex.Trace == nil {
		t.Fatalf("expected a counterexample trace, got %+v", ex)
	}
	ex, err = v.Explain(ctx, podc.MustParseFormula("E(true U c[2])"))
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Holds || ex.Trace == nil {
		t.Fatalf("expected a witness trace for EF c[2], got %+v", ex)
	}
}
