package podc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"iter"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/family"
	"repro/internal/kripke"
	"repro/internal/ring"
	"repro/internal/store"
)

// Session is the long-lived, serving-side entry point of the library: it
// caches built ring instances, verifiers (and their memoised satisfaction
// sets), decided correspondences and finished experiment tables across
// calls, so that a process answering many verification requests — the HTTP
// service of cmd/podcserve, a REPL, a long sweep — pays for each expensive
// artefact once.
//
// Sessions are safe for concurrent use.  Identical in-flight requests are
// deduplicated: when two goroutines ask for the same correspondence, one
// computes and the other waits for the result (or for its own context to be
// cancelled — a waiter's cancellation never cancels the computing call).
// Failed computations are not cached, so a request that failed because its
// context expired can be retried.
type Session struct {
	cfg config

	// storeOnce lazily opens the persistent verdict store (WithStore); a
	// store that fails to open leaves the field nil, which is the no-op
	// store.  See store.go.
	storeOnce sync.Once
	store     *store.Store

	// cacheHits / cacheMisses / cacheJoins instrument the flight maps
	// below: a hit found a completed computation, a miss started one, and a
	// join attached to one still in flight (the in-flight dedup working).
	cacheHits, cacheMisses, cacheJoins atomic.Int64

	mu         sync.Mutex
	rings      map[int]*flight[*Ring]
	verifiers  map[int]*flight[*Verifier]
	instances  map[instanceKey]*flight[*Structure]
	corr       map[pairKey]*flight[*IndexedCorrespondence]
	certs      map[pairKey]*flight[*TransferCertificate]
	tables     map[string]*flight[*Table]
	structures map[string]*Structure
}

// instanceKey addresses one built family instance in the session cache.
// mode separates construction routes that yield different structures: ""
// for direct and parallel builds (proven byte-identical, so they share
// entries) and "sym" for the symmetry-unfolded route, whose structures are
// bisimilar but renumbered.
type instanceKey struct {
	topology string
	n        int
	mode     string
}

// instanceMode returns the cache mode of the session's configured
// construction route.
func (c config) instanceMode() string {
	if c.symmetry {
		return "sym"
	}
	return ""
}

// pairKey addresses one decided correspondence (or transfer certificate)
// in the session cache.
type pairKey struct {
	topology     string
	small, large int
}

// NewSession returns an empty Session.  Options set the session-wide
// defaults: WithWorkers caps every worker pool the session spawns,
// WithMinimize makes the session's verifiers check verified quotients.
func NewSession(opts ...Option) *Session {
	return &Session{
		cfg:        buildConfig(opts),
		rings:      make(map[int]*flight[*Ring]),
		verifiers:  make(map[int]*flight[*Verifier]),
		instances:  make(map[instanceKey]*flight[*Structure]),
		corr:       make(map[pairKey]*flight[*IndexedCorrespondence]),
		certs:      make(map[pairKey]*flight[*TransferCertificate]),
		tables:     make(map[string]*flight[*Table]),
		structures: make(map[string]*Structure),
	}
}

// flight is one cached (or in-flight) computation.
type flight[T any] struct {
	done chan struct{}
	val  T
	err  error
}

// getOrCompute returns the cached value for key, joining an in-flight
// computation when one exists and starting one otherwise.  Errors are not
// cached: the failed entry is dropped so a later call retries.  A joined
// computation runs under the *first* caller's context; when that caller is
// cancelled, a still-healthy waiter does not inherit the foreign context
// error — it retries (becoming the new computing caller), so one client's
// disconnect never fails another client's identical request.
func getOrCompute[K comparable, T any](ctx context.Context, s *Session, m map[K]*flight[T], key K, compute func() (T, error)) (T, error) {
	for {
		s.mu.Lock()
		f, ok := m[key]
		if !ok {
			f = &flight[T]{done: make(chan struct{})}
			m[key] = f
			s.mu.Unlock()
			s.cacheMisses.Add(1)
			f.val, f.err = compute()
			if f.err != nil {
				s.mu.Lock()
				if m[key] == f {
					delete(m, key)
				}
				s.mu.Unlock()
			}
			close(f.done)
			return f.val, f.err
		}
		s.mu.Unlock()
		select {
		case <-f.done:
			s.cacheHits.Add(1)
		default:
			s.cacheJoins.Add(1)
		}
		select {
		case <-f.done:
			if f.err != nil && ctx.Err() == nil &&
				(errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded)) {
				// The computing caller's context died, not ours; its entry
				// has been dropped, so loop and recompute under our own.
				continue
			}
			return f.val, f.err
		case <-ctx.Done():
			var zero T
			return zero, ctx.Err()
		}
	}
}

// Ring returns the cached ring instance M_r, building it on first use.
// Sessions configured with WithParallelBuild construct it on the packed-BFS
// worker pool; the result is byte-identical to the sequential build, so the
// cache needs no separate key.
func (s *Session) Ring(ctx context.Context, r int) (*Ring, error) {
	return getOrCompute(ctx, s, s.rings, r, func() (*Ring, error) {
		if s.cfg.parallelBuild {
			inst, err := ring.BuildWith(ctx, r, ring.BuildOptions{Workers: s.cfg.buildWorkers})
			if err != nil {
				return nil, err
			}
			return &Ring{inst: inst}, nil
		}
		return BuildRing(r)
	})
}

// RingVerifier returns the cached Verifier for M_r; its memoised
// satisfaction sets are shared by every subsequent check against that size.
func (s *Session) RingVerifier(ctx context.Context, r int) (*Verifier, error) {
	return getOrCompute(ctx, s, s.verifiers, r, func() (*Verifier, error) {
		rg, err := s.Ring(ctx, r)
		if err != nil {
			return nil, err
		}
		// The session's full option state applies — no hand-copied subset,
		// so knobs like WithReachableOnly reach the quotient decision too.
		return newVerifier(ctx, rg.Structure(), s.cfg)
	})
}

// CheckRing model checks a formula against the cached ring M_r.
func (s *Session) CheckRing(ctx context.Context, r int, f Formula) (bool, error) {
	v, err := s.RingVerifier(ctx, r)
	if err != nil {
		return false, err
	}
	return v.Check(ctx, f)
}

// Instance returns the cached instance M_n of the topology, building it on
// first use.  Ring instances share the richer Ring cache.
func (s *Session) Instance(ctx context.Context, topo Topology, n int) (*Structure, error) {
	if !topo.IsValid() {
		return nil, fmt.Errorf("podc: Instance: invalid topology (zero value)")
	}
	return s.topologyInstance(ctx, topo.raw(), n)
}

func (s *Session) topologyInstance(ctx context.Context, t family.Topology, n int) (*Structure, error) {
	mode := s.cfg.instanceMode()
	if mode == "" && t.Name() == family.Ring().Name() {
		// Ring instances share the richer Ring cache; the symmetry route
		// renumbers states, so it stays in the per-mode instance cache.
		rg, err := s.Ring(ctx, n)
		if err != nil {
			return nil, err
		}
		return rg.Structure(), nil
	}
	return getOrCompute(ctx, s, s.instances, instanceKey{topology: t.Name(), n: n, mode: mode}, func() (*Structure, error) {
		m, err := s.buildInstance(ctx, t, n)
		if err != nil {
			return nil, err
		}
		return wrapStructure(m), nil
	})
}

// buildInstance constructs one topology instance through the session's
// configured route: the certified quotient-unfold (WithSymmetry), the
// parallel packed-BFS engine (WithParallelBuild) or the sequential Build.
func (s *Session) buildInstance(ctx context.Context, t family.Topology, n int) (*kripke.Structure, error) {
	switch {
	case s.cfg.symmetry:
		m, _, err := family.BuildUnfolded(ctx, t, n)
		return m, err
	case s.cfg.parallelBuild:
		return family.BuildParallel(ctx, t, n, s.cfg.buildWorkers)
	default:
		return t.Build(n)
	}
}

// Correspondence decides (and caches) the topology's canonical indexed
// correspondence between M_small and M_large.  Concurrent requests for the
// same (topology, small, large) triple share one computation.
func (s *Session) Correspondence(ctx context.Context, topo Topology, small, large int) (*IndexedCorrespondence, error) {
	if !topo.IsValid() {
		return nil, fmt.Errorf("podc: Correspondence: invalid topology (zero value)")
	}
	if small > large {
		return nil, fmt.Errorf("podc: Correspondence: need small <= large, got %d > %d", small, large)
	}
	t := topo.raw()
	return getOrCompute(ctx, s, s.corr, pairKey{topology: t.Name(), small: small, large: large}, func() (*IndexedCorrespondence, error) {
		st := s.verdictStore()
		key := s.storeKey("correspondence", t, small, large)
		var rec store.CorrespondenceRecord
		if ok, err := st.Get(key, &rec); err == nil && ok {
			// Restore audits the record's internal consistency; a record
			// that fails it is recomputed like any other miss.
			if res, rerr := rec.Restore(); rerr == nil {
				return &IndexedCorrespondence{res: res, in: indexPairsFromRaw(t.IndexRelation(small, large))}, nil
			}
		}
		sm, err := s.topologyInstance(ctx, t, small)
		if err != nil {
			return nil, err
		}
		lg, err := s.topologyInstance(ctx, t, large)
		if err != nil {
			return nil, err
		}
		res, err := family.DecideBuilt(ctx, t, sm.raw(), small, lg.raw(), large)
		if err != nil {
			return nil, err
		}
		storePut(st, key, store.RecordIndexed(res))
		return &IndexedCorrespondence{res: res, in: indexPairsFromRaw(t.IndexRelation(small, large))}, nil
	})
}

// RingCorrespondence decides (and caches) the canonical indexed ring
// correspondence between M_small and M_large.
func (s *Session) RingCorrespondence(ctx context.Context, small, large int) (*IndexedCorrespondence, error) {
	return s.Correspondence(ctx, RingTopology(), small, large)
}

// CorrespondenceEvidence returns the machine-checked evidence for a failed
// correspondence between M_small and M_large of the topology: the failing
// index pair, the distinguishing formula over its reductions (replayed
// through the model checker) and the game path.  It returns nil when the
// instances correspond.  The underlying correspondence and instances are
// served from (and populate) the session caches; only the evidence
// extraction itself is recomputed per call.
func (s *Session) CorrespondenceEvidence(ctx context.Context, topo Topology, small, large int) (*Evidence, error) {
	corr, err := s.Correspondence(ctx, topo, small, large)
	if err != nil {
		return nil, err
	}
	if corr.Corresponds() {
		return nil, nil
	}
	t := topo.raw()
	st := s.verdictStore()
	key := s.storeKey("evidence", t, small, large)
	var rec store.EvidenceRecord
	if ok, err := st.Get(key, &rec); err == nil && ok {
		// Stored evidence re-enters through the replay gate: the formula is
		// re-parsed and re-checked on the pair's rebuilt reductions.  A
		// record that fails is discarded and the evidence re-extracted.
		if ev, rerr := s.replayEvidenceRecord(ctx, t, small, large, &rec); rerr == nil {
			return ev, nil
		}
	}
	sm, err := s.topologyInstance(ctx, t, small)
	if err != nil {
		return nil, err
	}
	lg, err := s.topologyInstance(ctx, t, large)
	if err != nil {
		return nil, err
	}
	fev, err := family.ExplainBuilt(ctx, t, sm.raw(), small, lg.raw(), large, corr.res)
	if err != nil {
		return nil, err
	}
	if fev != nil {
		storePut(st, key, evidenceRecordFromFamily(fev))
	}
	return evidenceFromFamily(fev), nil
}

// sessionFamily adapts a topology to the Family interface with instance
// builds served from the session cache.
func (s *Session) sessionFamily(ctx context.Context, t family.Topology) Family {
	return &FamilyFunc{
		FamilyName: t.Name(),
		BuildFunc: func(n int) (*Structure, error) {
			return s.topologyInstance(ctx, t, n)
		},
		Indices: func(small, n int) []IndexPair {
			return indexPairsFromRaw(t.IndexRelation(small, n))
		},
		AtomNames: t.Atoms(),
	}
}

// TransferCertificate builds (and caches) the topology's transfer
// certificate for the pair (small, large): the serialisable per-index-pair
// relations that justify transferring restricted ICTL* truth from M_small
// to M_large.
func (s *Session) TransferCertificate(ctx context.Context, topo Topology, small, large int) (*TransferCertificate, error) {
	if !topo.IsValid() {
		return nil, fmt.Errorf("podc: TransferCertificate: invalid topology (zero value)")
	}
	if small > large {
		return nil, fmt.Errorf("podc: TransferCertificate: need small <= large, got %d > %d", small, large)
	}
	t := topo.raw()
	return getOrCompute(ctx, s, s.certs, pairKey{topology: t.Name(), small: small, large: large}, func() (*TransferCertificate, error) {
		st := s.verdictStore()
		key := s.storeKey("certificate", t, small, large)
		var raw json.RawMessage
		if ok, err := st.Get(key, &raw); err == nil && ok {
			// A stored certificate is never trusted as-is: its relations are
			// re-checked clause by clause against freshly built (session-
			// cached) instances, which is the certificate's whole point —
			// validation is cheap, the decision procedure is not.
			if cert, cerr := TransferCertificateFromJSON(raw); cerr == nil {
				if cert.Validate(s.sessionFamily(ctx, t)) == nil {
					return cert, nil
				}
			}
		}
		cert, err := BuildTransferCertificate(ctx, s.sessionFamily(ctx, t), small, large)
		if err != nil {
			return nil, err
		}
		storePut(st, key, cert)
		return cert, nil
	})
}

// RingTransferCertificate builds (and caches) the ring transfer
// certificate for the pair (small, large).
func (s *Session) RingTransferCertificate(ctx context.Context, small, large int) (*TransferCertificate, error) {
	return s.TransferCertificate(ctx, RingTopology(), small, large)
}

// AddStructure registers a named structure with the session, so later
// Check calls (and HTTP requests) can refer to it by name.  Re-registering
// a name replaces the previous structure.
func (s *Session) AddStructure(name string, m *Structure) error {
	if name == "" {
		return fmt.Errorf("podc: AddStructure: empty name")
	}
	if m == nil {
		return fmt.Errorf("podc: AddStructure: nil structure")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.structures[name] = m
	return nil
}

// StructureByName returns a structure previously registered with
// AddStructure.
func (s *Session) StructureByName(name string) (*Structure, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.structures[name]
	return m, ok
}

// SweepResult is one size's verdict from a sweep, streamed as soon as it
// is decided.
type SweepResult struct {
	Topology    string        `json:"topology"`
	R           int           `json:"r"`
	States      int           `json:"states"`
	Transitions int           `json:"transitions"`
	Corresponds bool          `json:"corresponds"`
	MaxDegree   int           `json:"max_degree"`
	Build       time.Duration `json:"build_ns"`
	Decide      time.Duration `json:"decide_ns"`
	// StatesPerSec is the packed-BFS construction throughput (zero when
	// the sequential fallback built the instance).
	StatesPerSec float64 `json:"states_per_sec,omitempty"`
	// BuildOnly marks sizes beyond the decide budget: the space was
	// explored and invariant-checked, but no correspondence was decided
	// (Corresponds is meaningless on such rows).
	BuildOnly bool `json:"build_only,omitempty"`
	// QuotientStates counts the orbits of the instance's automorphism
	// group on build-only rows (zero otherwise).
	QuotientStates int `json:"quotient_states,omitempty"`
	// CacheHit marks sizes replayed from the session's persistent verdict
	// store (WithStore): nothing was built or decided for them.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Seeded marks sizes whose decision accepted a warm-start seed
	// projected from the previous size (WithWarmSweep).
	Seeded bool `json:"seeded,omitempty"`
	// Err is non-nil when this size failed (the sweep continues with the
	// remaining sizes).
	Err error `json:"-"`
}

// Sweep decides the cutoff correspondence M_cutoff ~ M_n of the session's
// configured topology (WithTopology; the token ring by default) for every
// requested size on a worker pool and yields each verdict the moment it is
// decided, in completion order.  Breaking out of the iteration cancels the
// remaining work; cancelling ctx ends the stream early.  Every verdict that
// comes back true extends the range of sizes over which Theorem 5 transfers
// the family's specifications.
func (s *Session) Sweep(ctx context.Context, sizes []int) iter.Seq[SweepResult] {
	t, err := s.cfg.topologyOrError()
	if err != nil {
		return errorSweep(err, sizes)
	}
	return s.SweepTopology(ctx, Topology{t: t}, sizes)
}

// errorSweep yields one failed SweepResult per requested size, so
// configuration errors surface through the same stream the consumer is
// already reading.
func errorSweep(err error, sizes []int) iter.Seq[SweepResult] {
	return func(yield func(SweepResult) bool) {
		for _, n := range sizes {
			if !yield(SweepResult{R: n, Err: err}) {
				return
			}
		}
	}
}

// SweepTopology is Sweep for an explicitly chosen topology.
func (s *Session) SweepTopology(ctx context.Context, topo Topology, sizes []int) iter.Seq[SweepResult] {
	if !topo.IsValid() {
		return errorSweep(fmt.Errorf("podc: SweepTopology: invalid topology (zero value)"), sizes)
	}
	runner := experiments.Runner{
		Workers:      s.cfg.workers,
		BuildWorkers: s.cfg.buildWorkers,
		Store:        s.verdictStore(),
		Warm:         s.cfg.warmSweep,
	}
	return func(yield func(SweepResult) bool) {
		ctx, cancel := context.WithCancel(ctx)
		defer cancel()
		ch := runner.TopologySweep(ctx, topo.raw(), sizes)
		for row := range ch {
			res := SweepResult{
				Topology:       row.Topology,
				R:              row.R,
				States:         row.States,
				Transitions:    row.Transitions,
				Corresponds:    row.Corresponds,
				MaxDegree:      row.MaxDegree,
				Build:          row.BuildElapsed,
				Decide:         row.DecideElapsed,
				StatesPerSec:   row.StatesPerSec,
				BuildOnly:      row.BuildOnly,
				QuotientStates: row.QuotientStates,
				CacheHit:       row.CacheHit,
				Seeded:         row.Seeded,
				Err:            row.Err,
			}
			if !yield(res) {
				cancel()
				for range ch { // let the pool drain and exit
				}
				return
			}
		}
	}
}

// SweepTable collects a Sweep of the session's configured topology into
// one table sorted by size; it fails on the first erroring size.
func (s *Session) SweepTable(ctx context.Context, sizes []int) (*Table, error) {
	var rows []SweepResult
	for row := range s.Sweep(ctx, sizes) {
		if row.Err != nil {
			return nil, fmt.Errorf("podc: sweep %s n=%d: %w", row.Topology, row.R, row.Err)
		}
		rows = append(rows, row)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return SweepResultsTable(rows), nil
}

// SweepResultsTable renders already-collected sweep results as one table,
// sorted by topology and size, without re-running anything.
func SweepResultsTable(rows []SweepResult) *Table {
	raw := make([]experiments.SweepRow, len(rows))
	for i, r := range rows {
		raw[i] = experiments.SweepRow{
			Topology:       r.Topology,
			R:              r.R,
			States:         r.States,
			Transitions:    r.Transitions,
			BuildElapsed:   r.Build,
			DecideElapsed:  r.Decide,
			Corresponds:    r.Corresponds,
			MaxDegree:      r.MaxDegree,
			StatesPerSec:   r.StatesPerSec,
			BuildOnly:      r.BuildOnly,
			QuotientStates: r.QuotientStates,
			CacheHit:       r.CacheHit,
			Seeded:         r.Seeded,
			Err:            r.Err,
		}
	}
	return tableFromRaw(experiments.SweepRowsTable(raw))
}

// ExperimentIDs returns the identifiers of the standard experiment battery
// (E1..E9, in DESIGN.md order).
func ExperimentIDs() []string {
	jobs := experiments.StandardJobs()
	out := make([]string, len(jobs))
	for i, j := range jobs {
		out[i] = j.ID
	}
	return out
}

// findExperimentJob resolves an experiment identifier, tolerating the
// compound "E4/E5" identifier being addressed by either half (useful for
// URL paths).
func findExperimentJob(id string) (experiments.Job, bool) {
	for _, j := range experiments.StandardJobs() {
		if j.ID == id {
			return j, true
		}
		for _, part := range strings.Split(j.ID, "/") {
			if part == id {
				return j, true
			}
		}
	}
	return experiments.Job{}, false
}

// Experiment runs (and caches) one experiment of the standard battery by
// identifier and returns its table.  Concurrent requests for the same
// identifier share one run.
func (s *Session) Experiment(ctx context.Context, id string) (*Table, error) {
	job, ok := findExperimentJob(id)
	if !ok {
		return nil, fmt.Errorf("podc: unknown experiment %q (have %s)", id, strings.Join(ExperimentIDs(), ", "))
	}
	return getOrCompute(ctx, s, s.tables, job.ID, func() (*Table, error) {
		tbl, err := job.Run(ctx)
		if err != nil {
			return nil, err
		}
		return tableFromRaw(tbl), nil
	})
}

// ExperimentResult is one streamed outcome of Experiments.
type ExperimentResult struct {
	ID      string        `json:"id"`
	Table   *Table        `json:"table,omitempty"`
	Elapsed time.Duration `json:"elapsed_ns"`
	Err     error         `json:"-"`
}

// Experiments runs the named experiments (all of them when ids is empty) on
// a worker pool and yields each table the moment its experiment finishes,
// in completion order.  Results are cached in the session; already-cached
// experiments are yielded immediately.  Breaking out of the iteration
// cancels the remaining work.
func (s *Session) Experiments(ctx context.Context, ids []string) iter.Seq[ExperimentResult] {
	return func(yield func(ExperimentResult) bool) {
		var jobs []experiments.Job
		if len(ids) == 0 {
			jobs = experiments.StandardJobs()
		} else {
			//lint:ctxloop job-list validation, bounded by the requested experiment ids
			for _, id := range ids {
				job, ok := findExperimentJob(id)
				if !ok {
					if !yield(ExperimentResult{ID: id, Err: fmt.Errorf("podc: unknown experiment %q", id)}) {
						return
					}
					continue
				}
				jobs = append(jobs, job)
			}
		}
		ctx, cancel := context.WithCancel(ctx)
		defer cancel()
		runner := experiments.Runner{Workers: s.cfg.workers}
		wrapped := make([]experiments.Job, len(jobs))
		for i, job := range jobs {
			job := job
			wrapped[i] = experiments.Job{ID: job.ID, Run: func(ctx context.Context) (*experiments.Table, error) {
				tbl, err := getOrCompute(ctx, s, s.tables, job.ID, func() (*Table, error) {
					t, err := job.Run(ctx)
					if err != nil {
						return nil, err
					}
					return tableFromRaw(t), nil
				})
				if err != nil {
					return nil, err
				}
				return tbl.raw(), nil
			}}
		}
		ch := runner.Stream(ctx, wrapped)
		for o := range ch {
			res := ExperimentResult{ID: o.ID, Table: tableFromRaw(o.Table), Elapsed: o.Elapsed, Err: o.Err}
			if !yield(res) {
				cancel()
				for range ch {
				}
				return
			}
		}
	}
}

// CacheStats is a snapshot of a Session's in-memory cache counters, one
// event per flight-map lookup: a Hit found a completed computation, a Miss
// started a fresh one, and a Join attached to an identical computation that
// was still in flight (the in-flight dedup saving a duplicate run).  A
// waiter that retries after the computing caller's context died counts its
// retry as a fresh lookup.
type CacheStats struct {
	Hits, Misses, Joins int64
}

// CacheStats reports the session's cache counters across every cached
// artefact kind (rings, verifiers, instances, correspondences, certificates,
// experiment tables).
func (s *Session) CacheStats() CacheStats {
	return CacheStats{
		Hits:   s.cacheHits.Load(),
		Misses: s.cacheMisses.Load(),
		Joins:  s.cacheJoins.Load(),
	}
}

// CachedExperimentIDs returns the identifiers of experiments whose tables
// the session has already computed, sorted.
func (s *Session) CachedExperimentIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for id, f := range s.tables {
		select {
		case <-f.done:
			if f.err == nil {
				out = append(out, id)
			}
		default:
		}
	}
	sort.Strings(out)
	return out
}
