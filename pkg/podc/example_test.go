package podc_test

// The examples in this file are the documented snippets of the package:
// go test executes them and asserts their output, so the documentation
// cannot drift from the code.

import (
	"context"
	"fmt"
	"log"

	"repro/pkg/podc"
)

// ExampleNetwork builds a family member with the generic process-network
// substrate: three clients competing for one shared resource, composed
// from a template and guarded-command rules.
func ExampleNetwork() {
	net := &podc.Network{
		Template: &podc.ProcessTemplate{
			Name:    "client",
			States:  []string{"idle", "using"},
			Initial: "idle",
			Labels:  map[string][]string{"idle": {"idle"}, "using": {"use"}},
		},
		N: 3,
		Rules: []podc.NetworkRule{
			{
				Name: "acquire",
				Guard: func(v podc.NetworkView, i int) bool {
					return v.Local(i) == "idle" && v.CountLocal("using") == 0
				},
				Apply: func(v podc.NetworkView, i int) podc.NetworkUpdate {
					return podc.NetworkUpdate{Locals: map[int]string{i: "using"}}
				},
			},
			{
				Name:  "release",
				Guard: func(v podc.NetworkView, i int) bool { return v.Local(i) == "using" },
				Apply: func(v podc.NetworkView, i int) podc.NetworkUpdate {
					return podc.NetworkUpdate{Locals: map[int]string{i: "idle"}}
				},
			},
		},
	}
	m, err := net.Build("pool[3]")
	if err != nil {
		log.Fatal(err)
	}
	v, err := podc.NewVerifier(context.Background(), m)
	if err != nil {
		log.Fatal(err)
	}
	holds, err := v.Check(context.Background(), podc.MustParseFormula("forall i . AG (use[i] -> (one use))"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("states: %d\n", m.NumStates())
	fmt.Printf("mutual exclusion holds: %v\n", holds)
	// Output:
	// states: 4
	// mutual exclusion holds: true
}

// ExampleSession_Correspondence decides (and caches) a topology's cutoff
// correspondence through a Session — the serving-side entry point the HTTP
// service answers /v1/correspond from.
func ExampleSession_Correspondence() {
	ctx := context.Background()
	session := podc.NewSession(podc.WithWorkers(2))
	star, _ := podc.TopologyByName("star")
	corr, err := session.Correspondence(ctx, star, star.CutoffSize(), 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("star M_%d ~ M_6 corresponds: %v\n", star.CutoffSize(), corr.Corresponds())
	fmt.Printf("index pairs compared: %d\n", len(corr.IndexRelation()))
	// Output:
	// star M_3 ~ M_6 corresponds: true
	// index pairs compared: 6
}

// ExampleTopology runs the paper's three-step methodology on a non-ring
// family: model check the cutoff instance, establish the correspondences,
// and conclude by Theorem 5 for every verified size.
func ExampleTopology() {
	ctx := context.Background()
	torus := podc.TorusTopology()
	report, err := podc.VerifyFamily(ctx, torus.Family(), torus.Specs(),
		podc.WithSmallSize(torus.CutoffSize()),
		podc.WithCorrespondenceSizes(6, 8, 10))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology %s, cutoff %d\n", torus.Name(), torus.CutoffSize())
	fmt.Printf("all specs hold on the cutoff instance: %v\n", report.AllHold())
	fmt.Printf("sizes covered by Theorem 5: %v\n", report.VerifiedSizes())
	// Output:
	// topology torus, cutoff 4
	// all specs hold on the cutoff instance: true
	// sizes covered by Theorem 5: [6 8 10]
}

// ExampleDecideCorrespondence contrasts two families at the same sizes:
// the ring's two-process instance is refuted (the reproduction's headline
// finding), while the requestless line family genuinely has a two-process
// cutoff.
func ExampleDecideCorrespondence() {
	ctx := context.Background()
	ringCorr, err := podc.DecideCorrespondence(ctx, 2, 4)
	if err != nil {
		log.Fatal(err)
	}
	lineCorr, err := podc.DecideCorrespondence(ctx, 2, 4, podc.WithTopology(podc.LineTopology()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ring M_2 ~ M_4: %v\n", ringCorr.Corresponds())
	fmt.Printf("line M_2 ~ M_4: %v\n", lineCorr.Corresponds())
	// Output:
	// ring M_2 ~ M_4: false
	// line M_2 ~ M_4: true
}
