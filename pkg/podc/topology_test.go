package podc_test

import (
	"context"
	"testing"

	"repro/pkg/podc"
)

func TestTopologyRegistry(t *testing.T) {
	names := podc.TopologyNames()
	want := []string{"ring", "star", "line", "tree", "torus", "torus3"}
	if len(names) != len(want) {
		t.Fatalf("TopologyNames = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("TopologyNames[%d] = %q, want %q", i, names[i], want[i])
		}
	}
	for _, name := range want {
		topo, ok := podc.TopologyByName(name)
		if !ok || topo.Name() != name || !topo.IsValid() {
			t.Fatalf("TopologyByName(%q) = %v, %v", name, topo, ok)
		}
	}
	if _, ok := podc.TopologyByName("hypercube"); ok {
		t.Error("unknown topology must not resolve")
	}
	if (podc.Topology{}).IsValid() {
		t.Error("the zero Topology must be invalid")
	}
}

// TestDecideCorrespondenceDispatch: the package-level entry point
// dispatches on WithTopology and defaults to the ring.
func TestDecideCorrespondenceDispatch(t *testing.T) {
	ctx := context.Background()

	// Default: the ring, whose M_2 does not correspond to M_4 (the refuted
	// Section 5 claim).
	ringCorr, err := podc.DecideCorrespondence(ctx, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ringCorr.Corresponds() {
		t.Error("ring M_2 ~ M_4 should be refuted")
	}

	// The star family's two-process instance does correspond: the
	// requestless protocol lacks the delayed-set structure that breaks the
	// ring's two-process cutoff.
	starCorr, err := podc.DecideCorrespondence(ctx, 2, 4, podc.WithTopology(podc.StarTopology()))
	if err != nil {
		t.Fatal(err)
	}
	if !starCorr.Corresponds() {
		t.Errorf("star M_2 ~ M_4 should correspond; failing pairs %v", starCorr.FailingPairs())
	}

	// Invalid sizes surface as errors, not verdicts.
	if _, err := podc.DecideCorrespondence(ctx, 4, 7, podc.WithTopology(podc.TorusTopology())); err == nil {
		t.Error("odd torus size must be rejected")
	}
	if _, err := podc.DecideCorrespondence(ctx, 5, 4); err == nil {
		t.Error("small > large must be rejected")
	}

	// The invalid zero Topology (e.g. a discarded TopologyByName failure)
	// must error, not silently answer for the ring.
	bogus, _ := podc.TopologyByName("taurus")
	if _, err := podc.DecideCorrespondence(ctx, 2, 4, podc.WithTopology(bogus)); err == nil {
		t.Error("the zero Topology must be rejected, not defaulted to the ring")
	}
}

// TestSessionRejectsInvalidTopologyInputs: every topology-taking Session
// entry point refuses the zero Topology and inverted sizes instead of
// returning a misleading verdict.
func TestSessionRejectsInvalidTopologyInputs(t *testing.T) {
	ctx := context.Background()
	s := podc.NewSession()
	var zero podc.Topology
	if _, err := s.Correspondence(ctx, zero, 3, 5); err == nil {
		t.Error("Correspondence must reject the zero Topology")
	}
	if _, err := s.TransferCertificate(ctx, zero, 3, 5); err == nil {
		t.Error("TransferCertificate must reject the zero Topology")
	}
	if _, err := s.Instance(ctx, zero, 3); err == nil {
		t.Error("Instance must reject the zero Topology")
	}
	star, _ := podc.TopologyByName("star")
	if _, err := s.Correspondence(ctx, star, 6, 3); err == nil {
		t.Error("Correspondence must reject small > large")
	}
	if _, err := s.TransferCertificate(ctx, star, 6, 3); err == nil {
		t.Error("TransferCertificate must reject small > large")
	}
	for row := range s.SweepTopology(ctx, zero, []int{4, 5}) {
		if row.Err == nil {
			t.Error("SweepTopology over the zero Topology must stream error rows")
		}
	}
	bad := podc.NewSession(podc.WithTopology(zero))
	var errRows int
	for row := range bad.Sweep(ctx, []int{4, 5}) {
		if row.Err != nil {
			errRows++
		}
	}
	if errRows != 2 {
		t.Errorf("a session configured with the zero Topology must stream error rows, got %d of 2", errRows)
	}
}

// TestVerifyFamilyOnTopology runs the paper's three-step methodology on a
// generalised family end to end: specs hold on the cutoff instance, the
// correspondences are established, and Theorem 5 covers the swept sizes.
func TestVerifyFamilyOnTopology(t *testing.T) {
	ctx := context.Background()
	tree := podc.TreeTopology()
	report, err := podc.VerifyFamily(ctx, tree.Family(), tree.Specs(),
		podc.WithSmallSize(tree.CutoffSize()),
		podc.WithCorrespondenceSizes(4, 5, 6, 7))
	if err != nil {
		t.Fatal(err)
	}
	if !report.AllHold() {
		t.Errorf("tree specs should hold on the cutoff instance:\n%s", report.Summary())
	}
	if got := len(report.VerifiedSizes()); got != 4 {
		t.Errorf("verified sizes %v, want all four", report.VerifiedSizes())
	}
	for _, res := range report.Results() {
		if !res.Transferable {
			t.Errorf("spec %s should be in the restricted fragment: %v", res.Name, res.RestrictionIssues)
		}
	}
}

// TestTopologyBuildAndSpecs pins the public instance shape: Θ(n) states
// for the token-circulation families, four specs each.
func TestTopologyBuildAndSpecs(t *testing.T) {
	for _, name := range []string{"star", "line", "tree", "torus"} {
		topo, _ := podc.TopologyByName(name)
		n := topo.CutoffSize() + 2
		if topo.ValidSize(n) != nil {
			n = topo.CutoffSize() + 4
		}
		m, err := topo.Build(n)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.NumStates() != 2*n {
			t.Errorf("%s[%d]: %d states, want 2n = %d", name, n, m.NumStates(), 2*n)
		}
		if got := len(topo.Specs()); got != 4 {
			t.Errorf("%s: %d specs, want 4", name, got)
		}
		if atoms := topo.Atoms(); len(atoms) != 1 || atoms[0] != podc.RingTokenAtom {
			t.Errorf("%s: atoms = %v, want the token atom", name, atoms)
		}
	}
}

// TestSessionTopologyCorrespondenceCached: correspondences are cached per
// (topology, small, large) — same-topology hits share, cross-topology
// requests do not collide.
func TestSessionTopologyCorrespondenceCached(t *testing.T) {
	ctx := context.Background()
	s := podc.NewSession(podc.WithWorkers(2))
	star, _ := podc.TopologyByName("star")
	line, _ := podc.TopologyByName("line")

	c1, err := s.Correspondence(ctx, star, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s.Correspondence(ctx, star, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("same-topology correspondence must be served from the cache")
	}
	c3, err := s.Correspondence(ctx, line, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if c3 == c1 {
		t.Error("different topologies must not share cache entries")
	}
	if !c1.Corresponds() || !c3.Corresponds() {
		t.Error("both families' cutoff correspondences should hold")
	}

	// The ring-specific accessors remain the topology engine's ring view.
	r1, err := s.RingCorrespondence(ctx, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	ringTopo, _ := podc.TopologyByName("ring")
	r2, err := s.Correspondence(ctx, ringTopo, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("RingCorrespondence must share the topology cache")
	}
}

// TestSessionSweepTopology streams a non-ring sweep through the session.
func TestSessionSweepTopology(t *testing.T) {
	ctx := context.Background()
	s := podc.NewSession(podc.WithWorkers(2), podc.WithTopology(podc.StarTopology()))
	var rows int
	for row := range s.Sweep(ctx, []int{4, 5, 6}) {
		if row.Err != nil {
			t.Fatalf("n=%d: %v", row.R, row.Err)
		}
		if row.Topology != "star" {
			t.Errorf("row topology %q, want star (the session's configured topology)", row.Topology)
		}
		if !row.Corresponds {
			t.Errorf("star n=%d should correspond", row.R)
		}
		rows++
	}
	if rows != 3 {
		t.Fatalf("got %d rows, want 3", rows)
	}
	tbl, err := s.SweepTable(ctx, []int{4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 || tbl.Rows[0][0] != "star" {
		t.Errorf("sweep table should carry the topology column: %v", tbl.Rows)
	}
}
