package podc

import (
	"fmt"

	"repro/internal/logic"
)

// Formula is a parsed CTL*/ICTL* formula.  The zero value is the invalid
// formula; obtain formulas with ParseFormula or MustParseFormula.  Formulas
// are immutable and safe to share.
//
// The concrete syntax follows the library's logic package, e.g.
//
//	AG (red -> walk)
//	A (G (red -> F green))
//	forall i . AG (d[i] -> AF c[i])
//	exists i . EF (d[i] & E[d[i] U c[i]])
//	one t                       — the "exactly one token" atom of Section 4
type Formula struct {
	f logic.Formula
}

// ParseFormula parses a CTL*/ICTL* formula.
func ParseFormula(text string) (Formula, error) {
	f, err := logic.Parse(text)
	if err != nil {
		return Formula{}, err
	}
	return Formula{f: f}, nil
}

// MustParseFormula is ParseFormula that panics on error; for use with
// literals in examples and tests.
func MustParseFormula(text string) Formula {
	return Formula{f: logic.MustParse(text)}
}

func wrapFormula(f logic.Formula) Formula { return Formula{f: f} }

func (f Formula) raw() logic.Formula { return f.f }

// IsValid reports whether the formula was produced by a successful parse
// (the zero Formula is invalid).
func (f Formula) IsValid() bool { return f.f != nil }

// String renders the formula in the concrete syntax.
func (f Formula) String() string {
	if f.f == nil {
		return "<invalid formula>"
	}
	return f.f.String()
}

// IsRestricted reports whether the formula lies in the *restricted* ICTL*
// fragment of Section 4 — the fragment for which Theorem 5 transfers truth
// across indexed correspondences.
func (f Formula) IsRestricted() bool {
	return f.f != nil && logic.IsRestricted(f.f)
}

// RestrictionIssues explains why the formula falls outside the restricted
// ICTL* fragment; it returns nil when the formula is restricted.
func (f Formula) RestrictionIssues() []string {
	if f.f == nil {
		return []string{"invalid formula"}
	}
	var out []string
	for _, v := range logic.CheckRestricted(f.f) {
		out = append(out, v.Error())
	}
	return out
}

// IsCTL reports whether the formula is CTL-shaped (every temporal operator
// immediately under a path quantifier), which enables the linear-time
// labelling engine and witness extraction.
func (f Formula) IsCTL() bool { return f.f != nil && logic.IsCTL(f.f) }

// IsClosed reports whether the formula has no free index variables.
func (f Formula) IsClosed() bool { return f.f != nil && logic.IsClosed(f.f) }

// Instantiate expands the indexed quantifiers ∧i / ∨i over the given
// concrete index set, yielding an ordinary CTL* formula (the form the
// counterexample machinery works on).
func (f Formula) Instantiate(indices []int) (Formula, error) {
	if f.f == nil {
		return Formula{}, errInvalidFormula()
	}
	g, err := logic.Instantiate(f.f, indices)
	if err != nil {
		return Formula{}, err
	}
	return wrapFormula(g), nil
}

// errInvalidFormula is returned by operations handed the zero Formula.
func errInvalidFormula() error {
	return fmt.Errorf("podc: invalid formula (use ParseFormula)")
}
