package podc

import (
	"fmt"

	"repro/internal/bisim"
	"repro/internal/family"
)

// Option configures a Verifier, a correspondence computation, a Session or
// a family verification run.  Options follow the functional-options
// pattern: pass any number of them to a constructor; later options override
// earlier ones.  Options that do not apply to the receiving operation are
// ignored, so a Session can be configured once with the union of the knobs
// its operations need.
type Option func(*config)

// config is the merged option state.
type config struct {
	workers       int
	minimize      bool
	atoms         []string
	reachableOnly bool
	evidence      bool

	// family verification knobs (VerifyFamily).
	smallSize            int
	correspondenceSizes  []int
	skipRestrictionCheck bool

	// topology selects the family DecideCorrespondence, Session sweeps and
	// correspondence caches operate on (nil means the token ring);
	// topologyInvalid records that WithTopology was given the invalid zero
	// Topology, which must surface as an error rather than a silent ring
	// fallback.
	topology        family.Topology
	topologyInvalid bool

	// construction knobs (WithParallelBuild, WithSymmetry): parallelBuild
	// routes instance construction through the parallel packed-BFS engine
	// (byte-identical to the sequential build, so it shares the sequential
	// caches), buildWorkers caps its pool, and symmetry routes builds
	// through the certified quotient-unfold (cached under its own key,
	// since the unfolding renumbers states).
	parallelBuild bool
	buildWorkers  int
	symmetry      bool

	// persistence knobs (WithStore, WithWarmSweep): storeDir roots the
	// persistent verdict store a Session replays decided correspondences,
	// certificates and evidence from; warmSweep makes session sweeps decide
	// sizes in ascending order, seeding each refinement with the previous
	// size's partition.
	storeDir  string
	warmSweep bool
}

// topologyOrRing returns the configured topology, defaulting to the token
// ring — the paper's own family — when none was given.
func (c config) topologyOrRing() family.Topology {
	if c.topology == nil {
		return family.Ring()
	}
	return c.topology
}

// topologyOrError returns the configured topology (the ring by default),
// rejecting a configuration that passed the invalid zero Topology —
// typically a discarded TopologyByName failure; answering for the wrong
// family would be a silent wrong result.
func (c config) topologyOrError() (family.Topology, error) {
	if c.topologyInvalid {
		return nil, fmt.Errorf("podc: WithTopology: invalid topology (zero value — did a TopologyByName lookup fail?)")
	}
	return c.topologyOrRing(), nil
}

func buildConfig(opts []Option) config {
	var c config
	for _, o := range opts {
		if o != nil {
			o(&c)
		}
	}
	return c
}

func (c config) bisimOptions() bisim.Options {
	return bisim.Options{
		OneProps:      append([]string(nil), c.atoms...),
		ReachableOnly: c.reachableOnly,
		Workers:       c.workers,
	}
}

// WithWorkers caps the worker pools used by indexed correspondence
// computations, sweeps and experiment batteries.  Zero or negative (the
// default) means one worker per available CPU for those pools.
//
// A value greater than one additionally switches the hot paths inside a
// single decision onto their multi-core engines: partition refinement
// drains its splitter queue in concurrent batches, and the model checker's
// EX/EU/EG evaluation and tableau component passes fan their word-at-a-time
// sweeps across the budget.  Every result — relations, degrees, work
// counters, evidence formulas, satisfaction sets — is byte-identical at
// every worker count (the differential batteries in internal/bisim and
// internal/mc pin this), so the knob only trades goroutines for latency.
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = n }
}

// WithMinimize makes a Verifier quotient the structure by its verified
// maximal self-correspondence before checking.  CTL* (no nexttime) answers
// are preserved by Theorem 2; X-formulas and witness traces refer to the
// quotient.  When the quotient is refused (the degree-bounded relation is
// not always a congruence for state fusion) the verifier silently keeps the
// original structure; Verifier.Minimized reports which happened.
func WithMinimize() Option {
	return func(c *config) { c.minimize = true }
}

// WithAtoms adds the "exactly one" atoms O_i P_i of Section 4 for the named
// indexed propositions to the compared vocabulary: corresponding states
// must then agree on whether exactly one process satisfies each named
// proposition.  The token-ring correspondences of the paper need
// WithAtoms("t").
func WithAtoms(names ...string) Option {
	return func(c *config) { c.atoms = append(c.atoms, names...) }
}

// WithReachableOnly restricts the totality requirement of the
// correspondence definition to the states reachable from the initial
// states, which is the natural reading for structures that were not
// pre-restricted (the paper's M_r is a reachable restriction by
// construction, so for it the readings coincide).
func WithReachableOnly() Option {
	return func(c *config) { c.reachableOnly = true }
}

// WithSmallSize sets the size of the instance that VerifyFamily model
// checks exhaustively (the paper's Section 5 uses 2; the reproduction's
// corrected cutoff is 3).  The default is 2.
func WithSmallSize(n int) Option {
	return func(c *config) { c.smallSize = n }
}

// WithCorrespondenceSizes sets the instance sizes for which VerifyFamily
// establishes the indexed correspondence with the small instance.
func WithCorrespondenceSizes(sizes ...int) Option {
	return func(c *config) { c.correspondenceSizes = append(c.correspondenceSizes, sizes...) }
}

// WithoutRestrictionCheck disables the restricted-ICTL* well-formedness
// check in VerifyFamily; useful for experiments that deliberately step
// outside the transferable fragment.
func WithoutRestrictionCheck() Option {
	return func(c *config) { c.skipRestrictionCheck = true }
}

// WithEvidence makes correspondence operations extract machine-checked
// evidence on failure: the returned Correspondence (or
// IndexedCorrespondence) carries a distinguishing CTL* (no nexttime)
// formula — true on one side, false on the other, replayed through the
// model checker before it is handed out — plus the offending index pair
// and a game path.  Evidence extraction runs only after a verdict of "do
// not correspond", so successful decisions pay nothing.
func WithEvidence() Option {
	return func(c *config) { c.evidence = true }
}

// WithParallelBuild makes a Session construct instances through the
// parallel packed-BFS engine of internal/explore with a pool of the given
// size (zero or negative: one worker per available CPU).  The engine's
// level-synchronised numbering makes the result byte-identical
// (kripke.EncodeText) to the sequential build for every worker count, so
// parallel and sequential builds share the session's instance caches.
// Topologies without a packed definition fall back to their sequential
// Build.  Sweeps run by the session use the same pool for construction.
func WithParallelBuild(workers int) Option {
	return func(c *config) {
		c.parallelBuild = true
		c.buildWorkers = workers
	}
}

// WithSymmetry makes a Session construct topology instances by the
// certified symmetry-quotient route: explore one representative per orbit
// of the instance's automorphism group, unfold the quotient back to the
// full space through the recorded witness permutations, and verify the
// unfolding against the original definition before handing the structure
// out.  The unfolded structure is bisimilar to the direct build but
// renumbered, so it is cached under a separate key and never mixed with
// direct builds.  Topologies without a wired group fall back to their
// sequential Build.
func WithSymmetry() Option {
	return func(c *config) { c.symmetry = true }
}

// WithStore points a Session at a persistent verdict store rooted at dir
// (created if needed).  The store is a content-addressed, engine-versioned
// cache of decided correspondences, transfer certificates and failure
// evidence: a session (or a later process) asking for an already-decided
// artefact replays it from disk instead of re-running refinement.  Nothing
// is trusted on the way back in — stored entries are integrity-checked,
// certificates are re-validated clause by clause against freshly built
// instances, and stored evidence formulas are re-parsed and replayed
// through the model checker; anything that fails is discarded and
// recomputed.  A store that cannot be opened is logged once and disabled:
// caching never turns into a failed request.
func WithStore(dir string) Option {
	return func(c *config) { c.storeDir = dir }
}

// WithWarmSweep makes session sweeps decide each topology's sizes
// sequentially in ascending order, seeding every refinement with the
// previous size's stable partition projected to the next size
// (family.WarmSeedProvider).  The refinement engine audits every seed, so
// a projection that turns out wrong costs one cold recompute — never a
// wrong answer.  Topologies without a state projection sweep cold as
// before.
func WithWarmSweep() Option {
	return func(c *config) { c.warmSweep = true }
}

// WithTopology selects the family an operation works on: DecideCorrespondence
// decides that topology's canonical correspondence, and a Session configured
// with it sweeps and caches that family by default.  Operations that are not
// topology-parametric ignore the option.  The default is the token ring.
// Passing the invalid zero Topology (e.g. a discarded TopologyByName
// failure) makes the receiving operation fail rather than silently answer
// for the ring.
func WithTopology(t Topology) Option {
	return func(c *config) {
		c.topology = t.t
		c.topologyInvalid = t.t == nil
	}
}
