package podc

import (
	"repro/internal/bisim"
)

// Option configures a Verifier, a correspondence computation, a Session or
// a family verification run.  Options follow the functional-options
// pattern: pass any number of them to a constructor; later options override
// earlier ones.  Options that do not apply to the receiving operation are
// ignored, so a Session can be configured once with the union of the knobs
// its operations need.
type Option func(*config)

// config is the merged option state.
type config struct {
	workers       int
	minimize      bool
	atoms         []string
	reachableOnly bool

	// family verification knobs (VerifyFamily).
	smallSize            int
	correspondenceSizes  []int
	skipRestrictionCheck bool
}

func buildConfig(opts []Option) config {
	var c config
	for _, o := range opts {
		if o != nil {
			o(&c)
		}
	}
	return c
}

func (c config) bisimOptions() bisim.Options {
	return bisim.Options{
		OneProps:      append([]string(nil), c.atoms...),
		ReachableOnly: c.reachableOnly,
		Workers:       c.workers,
	}
}

// WithWorkers caps the worker pools used by indexed correspondence
// computations, sweeps and experiment batteries.  Zero or negative (the
// default) means one worker per available CPU.
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = n }
}

// WithMinimize makes a Verifier quotient the structure by its verified
// maximal self-correspondence before checking.  CTL* (no nexttime) answers
// are preserved by Theorem 2; X-formulas and witness traces refer to the
// quotient.  When the quotient is refused (the degree-bounded relation is
// not always a congruence for state fusion) the verifier silently keeps the
// original structure; Verifier.Minimized reports which happened.
func WithMinimize() Option {
	return func(c *config) { c.minimize = true }
}

// WithAtoms adds the "exactly one" atoms O_i P_i of Section 4 for the named
// indexed propositions to the compared vocabulary: corresponding states
// must then agree on whether exactly one process satisfies each named
// proposition.  The token-ring correspondences of the paper need
// WithAtoms("t").
func WithAtoms(names ...string) Option {
	return func(c *config) { c.atoms = append(c.atoms, names...) }
}

// WithReachableOnly restricts the totality requirement of the
// correspondence definition to the states reachable from the initial
// states, which is the natural reading for structures that were not
// pre-restricted (the paper's M_r is a reachable restriction by
// construction, so for it the readings coincide).
func WithReachableOnly() Option {
	return func(c *config) { c.reachableOnly = true }
}

// WithSmallSize sets the size of the instance that VerifyFamily model
// checks exhaustively (the paper's Section 5 uses 2; the reproduction's
// corrected cutoff is 3).  The default is 2.
func WithSmallSize(n int) Option {
	return func(c *config) { c.smallSize = n }
}

// WithCorrespondenceSizes sets the instance sizes for which VerifyFamily
// establishes the indexed correspondence with the small instance.
func WithCorrespondenceSizes(sizes ...int) Option {
	return func(c *config) { c.correspondenceSizes = append(c.correspondenceSizes, sizes...) }
}

// WithoutRestrictionCheck disables the restricted-ICTL* well-formedness
// check in VerifyFamily; useful for experiments that deliberately step
// outside the transferable fragment.
func WithoutRestrictionCheck() Option {
	return func(c *config) { c.skipRestrictionCheck = true }
}
