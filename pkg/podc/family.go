package podc

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/bisim"
	"repro/internal/core"
	"repro/internal/kripke"
)

// Family describes a parameterized family of networks {M_n} of identical
// processes — the objects the paper reasons about.
type Family interface {
	// Name identifies the family.
	Name() string
	// Build constructs the instance M_n.  Implementations should return an
	// error (rather than exhausting memory) for sizes that cannot be built
	// explicitly; that is precisely the situation the correspondence
	// theorem is for.
	Build(n int) (*Structure, error)
	// IndexRelation returns the IN relation between the index sets of the
	// small instance M_small and a larger instance M_n.
	IndexRelation(small, n int) []IndexPair
	// Atoms lists the indexed propositions P whose "exactly one" atoms
	// O_i P_i are part of the family's specification vocabulary.
	Atoms() []string
}

// FamilyFunc is a function-based Family implementation.
type FamilyFunc struct {
	// FamilyName identifies the family.
	FamilyName string
	// BuildFunc constructs the instance M_n (required).
	BuildFunc func(n int) (*Structure, error)
	// Indices returns the IN relation; when nil the paper's Section 5
	// default is used (first index with first index, last small index with
	// every remaining large index).
	Indices func(small, n int) []IndexPair
	// AtomNames lists the "exactly one" atoms of the vocabulary.
	AtomNames []string
}

// Name implements Family.
func (f *FamilyFunc) Name() string { return f.FamilyName }

// Build implements Family.
func (f *FamilyFunc) Build(n int) (*Structure, error) {
	if f.BuildFunc == nil {
		return nil, fmt.Errorf("podc: family %s has no builder", f.FamilyName)
	}
	return f.BuildFunc(n)
}

// IndexRelation implements Family.
func (f *FamilyFunc) IndexRelation(small, n int) []IndexPair {
	if f.Indices != nil {
		return f.Indices(small, n)
	}
	out := []IndexPair{{I: 1, I2: 1}}
	for i := 2; i <= n; i++ {
		out = append(out, IndexPair{I: small, I2: i})
	}
	return out
}

// Atoms implements Family.
func (f *FamilyFunc) Atoms() []string { return f.AtomNames }

// coreFamily adapts a public Family to the internal core.Family interface.
type coreFamily struct{ f Family }

func (a coreFamily) Name() string { return a.f.Name() }

func (a coreFamily) Instance(n int) (*kripke.Structure, error) {
	m, err := a.f.Build(n)
	if err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("podc: family %s built a nil instance for n=%d", a.f.Name(), n)
	}
	return m.raw(), nil
}

func (a coreFamily) IndexRelation(small, n int) []bisim.IndexPair {
	return indexPairsToRaw(a.f.IndexRelation(small, n))
}

func (a coreFamily) OneProps() []string { return a.f.Atoms() }

// Spec is a named specification to verify for a family.
type Spec struct {
	Name    string
	Formula Formula
}

// SpecResult records the verdict for one specification on the small
// instance.
type SpecResult struct {
	// Name echoes the specification's name.
	Name string `json:"name"`
	// Holds reports whether the formula holds on the small instance.
	Holds bool `json:"holds"`
	// Transferable reports whether the formula is in the restricted ICTL*
	// fragment, so that Theorem 5 applies to it.
	Transferable bool `json:"transferable"`
	// RestrictionIssues lists why the formula is not transferable (empty
	// when Transferable).
	RestrictionIssues []string `json:"restriction_issues,omitempty"`
}

// SizeVerdict records the outcome of the correspondence step for one size.
type SizeVerdict struct {
	Size        int           `json:"size"`
	Corresponds bool          `json:"corresponds"`
	IndexPairs  int           `json:"index_pairs"`
	MaxDegree   int           `json:"max_degree"`
	Elapsed     time.Duration `json:"elapsed_ns"`
}

// FamilyReport is the outcome of VerifyFamily.
type FamilyReport struct {
	rep *core.Report
}

// VerifyFamily runs the paper's three-step methodology for one family:
// model check the specifications on the small instance (WithSmallSize),
// establish the indexed correspondence with each larger instance
// (WithCorrespondenceSizes), and conclude by Theorem 5 that every
// transferable specification that holds on the small instance holds for
// every size whose correspondence was established.  Cancelling ctx aborts
// the run between (and inside) the individual checks.
func VerifyFamily(ctx context.Context, f Family, specs []Spec, opts ...Option) (*FamilyReport, error) {
	if f == nil {
		return nil, fmt.Errorf("podc: VerifyFamily: nil family")
	}
	cfg := buildConfig(opts)
	coreSpecs := make([]core.Spec, len(specs))
	//lint:ctxloop spec validation only, bounded by the caller's spec list
	for i, s := range specs {
		if !s.Formula.IsValid() {
			return nil, fmt.Errorf("podc: VerifyFamily: specification %q has no formula", s.Name)
		}
		coreSpecs[i] = core.Spec{Name: s.Name, Formula: s.Formula.raw()}
	}
	v, err := core.NewVerifier(coreFamily{f: f}, core.Options{
		SmallSize:            cfg.smallSize,
		CorrespondenceSizes:  cfg.correspondenceSizes,
		SkipRestrictionCheck: cfg.skipRestrictionCheck,
	})
	if err != nil {
		return nil, err
	}
	rep, err := v.Run(ctx, coreSpecs)
	if err != nil {
		return nil, err
	}
	return &FamilyReport{rep: rep}, nil
}

// Summary renders the report as human-readable text.
func (r *FamilyReport) Summary() string { return r.rep.Summary() }

// AllHold reports whether every specification holds on the small instance.
func (r *FamilyReport) AllHold() bool { return r.rep.AllHold() }

// VerifiedSizes returns the sizes for which every transferable
// specification that holds on the small instance is guaranteed by Theorem 5
// to hold as well.
func (r *FamilyReport) VerifiedSizes() []int { return r.rep.VerifiedSizes() }

// SmallSize returns the size of the exhaustively checked instance.
func (r *FamilyReport) SmallSize() int { return r.rep.SmallSize }

// Results returns the per-specification verdicts on the small instance.
func (r *FamilyReport) Results() []SpecResult {
	out := make([]SpecResult, len(r.rep.Results))
	for i, res := range r.rep.Results {
		out[i] = SpecResult{
			Name:              res.Spec.Name,
			Holds:             res.HoldsSmall,
			Transferable:      res.Transferable,
			RestrictionIssues: res.RestrictionIssues,
		}
	}
	return out
}

// Correspondences returns the per-size correspondence verdicts.
func (r *FamilyReport) Correspondences() []SizeVerdict {
	out := make([]SizeVerdict, len(r.rep.Correspondence))
	for i, c := range r.rep.Correspondence {
		out[i] = SizeVerdict{
			Size:        c.Size,
			Corresponds: c.Corresponds,
			IndexPairs:  c.IndexPairs,
			MaxDegree:   c.MaxDegree,
			Elapsed:     c.Elapsed,
		}
	}
	return out
}

// TransferCertificate is a portable, serialisable record of why a result
// transfers from a small instance to a large one: the per-index-pair
// correspondence relations with their degrees.  A certificate can be
// stored, shipped and re-validated with Validate — which re-checks the
// relations clause by clause (cheap) rather than re-running the decision
// procedure.
type TransferCertificate struct {
	cert *core.TransferCertificate
}

// BuildTransferCertificate runs the correspondence computation between the
// family's small and large instances and packages the resulting relations.
// It fails when the instances do not correspond (no certificate exists).
func BuildTransferCertificate(ctx context.Context, f Family, smallSize, largeSize int) (*TransferCertificate, error) {
	if f == nil {
		return nil, fmt.Errorf("podc: BuildTransferCertificate: nil family")
	}
	cert, err := core.BuildCertificate(ctx, coreFamily{f: f}, smallSize, largeSize)
	if err != nil {
		return nil, err
	}
	return &TransferCertificate{cert: cert}, nil
}

// TransferCertificateFromJSON decodes a certificate previously produced by
// MarshalJSON.
func TransferCertificateFromJSON(data []byte) (*TransferCertificate, error) {
	var cert core.TransferCertificate
	if err := json.Unmarshal(data, &cert); err != nil {
		return nil, fmt.Errorf("podc: decoding transfer certificate: %w", err)
	}
	return &TransferCertificate{cert: &cert}, nil
}

// FamilyName returns the name of the family the certificate is for.
func (c *TransferCertificate) FamilyName() string { return c.cert.Family }

// SmallSize returns the size of the small instance.
func (c *TransferCertificate) SmallSize() int { return c.cert.SmallSize }

// LargeSize returns the size of the large instance.
func (c *TransferCertificate) LargeSize() int { return c.cert.LargeSize }

// MarshalJSON implements json.Marshaler; the encoding is the library's
// stable certificate format (family, sizes, atoms, per-pair relations).
func (c *TransferCertificate) MarshalJSON() ([]byte, error) { return json.Marshal(c.cert) }

// Validate re-checks the certificate against freshly built instances of the
// family.  It returns nil when every per-index relation is a valid
// correspondence relation between the reductions.
func (c *TransferCertificate) Validate(f Family) error {
	if f == nil {
		return fmt.Errorf("podc: TransferCertificate.Validate: nil family")
	}
	return c.cert.Validate(coreFamily{f: f})
}
