package repro_test

// The benchmarks in this file regenerate every experiment of the
// reproduction (see DESIGN.md §3 and EXPERIMENTS.md) and time the individual
// engines the experiments are built from.  Run them with
//
//	go test -bench=. -benchmem
//
// The experiment identifiers (E1..E10) match DESIGN.md.

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/bisim"
	"repro/internal/experiments"
	"repro/internal/explore"
	"repro/internal/family"
	"repro/internal/logic"
	"repro/internal/mc"
	"repro/internal/paperfig"
	"repro/internal/ring"
	"repro/internal/store"
)

// ---------------------------------------------------------------------------
// E1..E10: one benchmark per experiment table.
// ---------------------------------------------------------------------------

func BenchmarkFig31Correspondence(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig31(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig41Counting(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig41(context.Background(), 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig51BuildM2(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig51(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRingInvariantsAndProperties(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RingChecks(context.Background(), 6); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCorrespondenceCutoff(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CorrespondenceCutoff(context.Background(), 6); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendixLocalCheck1000(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.LocalRefutation(context.Background(), []int{1000}, 10, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStateExplosionTable(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.StateExplosion(context.Background(), 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinimization(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Minimization(context.Background(), 5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNestingConjecture(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.NestingConjecture(context.Background(), 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCrossTopology(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CrossTopology(context.Background(), 5); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// E7 in detail: the state-explosion series (direct model checking of M_r)
// versus the parameterized route, per ring size.
// ---------------------------------------------------------------------------

func BenchmarkStateExplosionDirect(b *testing.B) {
	for _, r := range []int{2, 4, 6, 8, 10, 12} {
		r := r
		b.Run(fmt.Sprintf("r=%d", r), func(b *testing.B) {
			inst, err := ring.Build(r)
			if err != nil {
				b.Fatal(err)
			}
			props := ring.Properties()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				checker := mc.New(inst.M)
				for _, p := range props {
					holds, err := checker.Holds(context.Background(), p.Formula)
					if err != nil {
						b.Fatal(err)
					}
					if !holds {
						b.Fatalf("property %s unexpectedly fails on M_%d", p.Name, r)
					}
				}
			}
			b.ReportMetric(float64(inst.M.NumStates()), "states")
		})
	}
}

func BenchmarkStateExplosionBuild(b *testing.B) {
	for _, r := range []int{4, 8, 12, 14} {
		r := r
		b.Run(fmt.Sprintf("r=%d", r), func(b *testing.B) {
			b.ReportAllocs()
			states := 0
			for i := 0; i < b.N; i++ {
				inst, err := ring.Build(r)
				if err != nil {
					b.Fatal(err)
				}
				states = inst.M.NumStates()
			}
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(states)*float64(b.N)/secs, "states/sec")
			}
		})
	}
}

// ---------------------------------------------------------------------------
// The parallel packed-BFS construction engine and the symmetry quotients
// (DESIGN.md §7).  BenchmarkParallelBuild is the successor series to
// BenchmarkStateExplosionBuild: the same labelled ring instances at the
// same sizes, built by the level-synchronised engine, so the two series
// compare directly.  (Labelled throughput in states/sec necessarily falls
// as r grows — every state carries ~r indexed propositions, so the label
// work per state is itself linear in r; the raw packed series below is the
// size-independent measure of the construction engine.)
// BenchmarkPackedExplore times the raw-space regime the big sweep sizes
// use (codes + CSR transitions, no labels) up to the million-state r = 16.
// The r = 18 and r = 20 spaces are built by the sweep
// (cmd/experiments -sweep default), not benchmarked here: a 4.7M/21M-state
// construction is a one-shot multi-minute run, too slow to repeat under
// benchtime and page-fault-bound rather than engine-bound (DESIGN.md §7).
// ---------------------------------------------------------------------------

func BenchmarkParallelBuild(b *testing.B) {
	for _, r := range []int{4, 8, 12, 14} {
		r := r
		b.Run(fmt.Sprintf("r=%d", r), func(b *testing.B) {
			b.ReportAllocs()
			states := 0
			for i := 0; i < b.N; i++ {
				inst, err := ring.BuildWith(context.Background(), r, ring.BuildOptions{})
				if err != nil {
					b.Fatal(err)
				}
				states = inst.M.NumStates()
			}
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(states)*float64(b.N)/secs, "states/sec")
			}
		})
	}
}

func BenchmarkPackedExplore(b *testing.B) {
	for _, r := range []int{4, 8, 12, 16} {
		r := r
		b.Run(fmt.Sprintf("r=%d", r), func(b *testing.B) {
			b.ReportAllocs()
			states := 0
			for i := 0; i < b.N; i++ {
				sp, err := explore.Explore(context.Background(), ring.PackedDef(r), explore.Options{})
				if err != nil {
					b.Fatal(err)
				}
				states = sp.NumStates()
			}
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(states)*float64(b.N)/secs, "states/sec")
			}
		})
	}
}

func BenchmarkSymmetryQuotient(b *testing.B) {
	// The r = 12 ring: 49 152 states collapse to 4 096 orbit
	// representatives under the cyclic rotation group.
	const r = 12
	b.ReportAllocs()
	reps := 0
	for i := 0; i < b.N; i++ {
		q, err := family.BuildQuotient(context.Background(), family.Ring(), r)
		if err != nil {
			b.Fatal(err)
		}
		reps = q.NumReps()
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(reps)*float64(b.N)/secs, "orbits/sec")
	}
}

func BenchmarkParameterizedRoute(b *testing.B) {
	// The cost that does not grow with the ring size: model check the cutoff
	// instance and validate the Appendix-style local checks at a huge ring.
	cutoff, err := ring.Build(ring.CutoffSize)
	if err != nil {
		b.Fatal(err)
	}
	props := ring.Properties()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		checker := mc.New(cutoff.M)
		for _, p := range props {
			if _, err := checker.Holds(context.Background(), p.Formula); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkCorrespondenceM3ToMr(b *testing.B) {
	small, err := ring.Build(ring.CutoffSize)
	if err != nil {
		b.Fatal(err)
	}
	// The workers dimension pins the parallel refinement engine against the
	// sequential one in BENCH_pr8.json: workers=1 keeps Compute fully
	// sequential, workers>1 switches it onto the batched drain and the
	// word-at-a-time degree pass of internal/bisim/parallel.go (the packed
	// engine engages on the worker budget, not on the core count, so the
	// comparison is meaningful on any machine).
	for _, r := range []int{4, 6, 8} {
		for _, workers := range []int{1, 8} {
			r, workers := r, workers
			b.Run(fmt.Sprintf("r=%d/workers=%d", r, workers), func(b *testing.B) {
				opts := bisim.Options{OneProps: []string{ring.PropToken}, ReachableOnly: true, Workers: workers}
				large, err := ring.Build(r)
				if err != nil {
					b.Fatal(err)
				}
				in := ring.CutoffIndexRelation(ring.CutoffSize, r)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := bisim.IndexedCompute(context.Background(), small.M, large.M, in, opts)
					if err != nil {
						b.Fatal(err)
					}
					if !res.Corresponds() {
						b.Fatal("cutoff correspondence unexpectedly fails")
					}
				}
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Engine micro-benchmarks (ablation-style measurements of the design
// choices called out in DESIGN.md).
// ---------------------------------------------------------------------------

func BenchmarkCTLLabelling(b *testing.B) {
	inst, err := ring.Build(8)
	if err != nil {
		b.Fatal(err)
	}
	formula := logic.MustParse("forall i . AG(d[i] -> AF c[i])")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		checker := mc.New(inst.M)
		if _, err := checker.Holds(context.Background(), formula); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCTLStarTableau(b *testing.B) {
	inst, err := ring.Build(6)
	if err != nil {
		b.Fatal(err)
	}
	// A genuine CTL* formula (not CTL-shaped): along some path process 1 is
	// delayed infinitely often and critical infinitely often.
	formula := logic.MustParse("E ((G (F d[1])) & (G (F c[1])))")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		checker := mc.New(inst.M)
		if _, err := checker.Holds(context.Background(), formula); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaximalCorrespondence(b *testing.B) {
	left, right, err := paperfig.Fig31()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bisim.Compute(context.Background(), left, right, bisim.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineRefinedVsFixpoint is the ablation behind the refinement
// engine (DESIGN.md §2): the same maximal-correspondence query answered by
// the partition-refinement engine (Compute) and by the original
// nested-fixpoint oracle (ComputeFixpoint), on the reductions the cutoff
// correspondence actually compares.
func BenchmarkEngineRefinedVsFixpoint(b *testing.B) {
	small, err := ring.Build(ring.CutoffSize)
	if err != nil {
		b.Fatal(err)
	}
	opts := bisim.Options{OneProps: []string{ring.PropToken}, ReachableOnly: true}
	for _, r := range []int{4, 6, 8} {
		large, err := ring.Build(r)
		if err != nil {
			b.Fatal(err)
		}
		left := small.M.ReduceNormalized(1)
		right := large.M.ReduceNormalized(1)
		b.Run(fmt.Sprintf("refined/r=%d", r), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bisim.Compute(context.Background(), left, right, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("fixpoint/r=%d", r), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bisim.ComputeFixpoint(context.Background(), left, right, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRelationCheck(b *testing.B) {
	small, err := ring.Build(2)
	if err != nil {
		b.Fatal(err)
	}
	large, err := ring.Build(6)
	if err != nil {
		b.Fatal(err)
	}
	rel := ring.BuildRelation(ring.CorrectedRelation, small, large, 1, 1)
	redSmall := small.M.ReduceNormalized(1)
	redLarge := large.M.ReduceNormalized(1)
	opts := bisim.Options{OneProps: []string{ring.PropToken}, ReachableOnly: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bisim.Check(redSmall, redLarge, rel, opts)
	}
}

func BenchmarkLocalCheckerPerState(b *testing.B) {
	small, err := ring.Build(2)
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range []int{100, 1000} {
		r := r
		b.Run(fmt.Sprintf("r=%d", r), func(b *testing.B) {
			lc, err := ring.NewLocalChecker(CorrectedOrPaper(), small, r)
			if err != nil {
				b.Fatal(err)
			}
			state := ring.NewGlobalState(r)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lc.CheckState(state, 1, 1)
			}
		})
	}
}

// CorrectedOrPaper exists so the benchmark reads naturally; the corrected
// variant is the interesting one to time (same complexity as the paper's).
func CorrectedOrPaper() ring.RelationVariant { return ring.CorrectedRelation }

func BenchmarkFormulaParse(b *testing.B) {
	const text = "!(exists i . EF(!d[i] & !t[i] & E[!d[i] U t[i]]))"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := logic.Parse(text); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInstantiate(b *testing.B) {
	f := logic.MustParse("forall i . AG(d[i] -> AF c[i])")
	indices := make([]int, 50)
	for i := range indices {
		indices[i] = i + 1
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := logic.Instantiate(f, indices); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRingSuccessors(b *testing.B) {
	state := ring.NewGlobalState(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		state.Successors()
	}
}

func BenchmarkMinimizeStutteredStructure(b *testing.B) {
	left, right, err := paperfig.Fig31()
	if err != nil {
		b.Fatal(err)
	}
	_ = left
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bisim.Minimize(context.Background(), right, bisim.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// PR9: incremental engines.  The full-range sweep (r=4..14, every topology)
// cold, warm-started (each size seeded from the previous quotient) and
// replayed from a populated verdict store.  The replay benchmark is the
// acceptance number for the persistent store: a second full battery must be
// pure cache replay plus revalidation, several times faster than deciding
// cold.
// ---------------------------------------------------------------------------

// sweepFullRange drives one full sweep over every topology's valid sizes in
// [4, 14] and returns (rows decided, rows replayed from the store).
func sweepFullRange(b *testing.B, r experiments.Runner) (decided, replayed int) {
	b.Helper()
	for _, topo := range family.Topologies() {
		sizes := family.ValidSizesIn(topo, 4, 14)
		if len(sizes) == 0 {
			continue
		}
		for row := range r.TopologySweep(context.Background(), topo, sizes) {
			if row.Err != nil {
				b.Fatalf("%s n=%d: %v", row.Topology, row.R, row.Err)
			}
			if row.CacheHit {
				replayed++
			} else {
				decided++
			}
		}
	}
	return decided, replayed
}

func BenchmarkSweepFullRangeCold(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		decided, _ := sweepFullRange(b, experiments.Runner{})
		if decided == 0 {
			b.Fatal("cold sweep decided nothing")
		}
	}
}

func BenchmarkSweepFullRangeWarm(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		decided, _ := sweepFullRange(b, experiments.Runner{Warm: true})
		if decided == 0 {
			b.Fatal("warm sweep decided nothing")
		}
	}
}

func BenchmarkSweepFullRangeReplay(b *testing.B) {
	st, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	// Populate the store once, outside the timer: the timed iterations are
	// the second full-battery runs, which must be pure replay.
	if decided, _ := sweepFullRange(b, experiments.Runner{Store: st}); decided == 0 {
		b.Fatal("populating sweep decided nothing")
	}
	before := bisim.ComputeCalls()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		decided, replayed := sweepFullRange(b, experiments.Runner{Store: st})
		if decided != 0 || replayed == 0 {
			b.Fatalf("replay sweep decided %d rows cold (replayed %d): the store missed", decided, replayed)
		}
	}
	b.StopTimer()
	if delta := bisim.ComputeCalls() - before; delta != 0 {
		b.Fatalf("replay iterations ran %d refinement computations, want 0", delta)
	}
}
