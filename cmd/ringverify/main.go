// Command ringverify runs the paper's Section 5 verification for the
// token-ring mutual exclusion protocol at a chosen ring size, and optionally
// reproduces the correspondence analysis against the cutoff instance and the
// local refutation of the Appendix relation at very large rings.
//
// Usage:
//
//	ringverify -r 5                 # build M_5, check invariants + properties
//	ringverify -r 6 -correspond     # also decide the correspondence with M_3 (and M_2)
//	ringverify -r 1000 -local 50    # local clause checking only (no state graph)
//	ringverify -r 4 -buggy          # show the counterexample on the broken variant
//
// Exit status 0 when every checked property holds, 1 otherwise, 2 on errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/pkg/podc"
)

func main() {
	os.Exit(run())
}

func run() int {
	r := flag.Int("r", 4, "number of processes in the ring")
	correspond := flag.Bool("correspond", false, "decide the indexed correspondence with the cutoff instance M_3 and with M_2")
	local := flag.Int("local", 0, "if > 0, skip building M_r and locally check the Appendix relation at this many sampled states")
	buggy := flag.Bool("buggy", false, "verify the deliberately broken protocol variant instead (shows a counterexample)")
	seed := flag.Int64("seed", 1, "random seed for local sampling")
	flag.Parse()
	ctx := context.Background()

	if *local > 0 {
		return runLocal(ctx, *r, *local, *seed)
	}

	inst, err := buildInstance(*r, *buggy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ringverify:", err)
		return 2
	}
	m := inst.Structure()
	fmt.Println(m.Summary())
	if err := inst.CheckPartitionInvariant(); err != nil {
		fmt.Println("partition invariant:", err)
	} else {
		fmt.Println("partition invariant: holds (structural check)")
	}

	verifier, err := podc.NewVerifier(ctx, m)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ringverify:", err)
		return 2
	}
	allHold := true
	for _, spec := range append(podc.RingInvariants(), podc.RingProperties()...) {
		holds, err := verifier.Check(ctx, spec.Formula)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ringverify:", err)
			return 2
		}
		status := "holds"
		if !holds {
			status = "FAILS"
			allHold = false
		}
		fmt.Printf("  %-6s %-28s %s\n", status, spec.Name, spec.Formula)
		if !holds {
			// Instantiate the indexed quantifiers so the counterexample
			// machinery (which handles A-rooted CTL) can be applied.
			shape := spec.Formula
			if inst, err := spec.Formula.Instantiate(m.IndexValues()); err == nil {
				shape = inst
			}
			if cx, err := verifier.Counterexample(ctx, shape); err == nil {
				fmt.Println("         counterexample:", cx)
			}
		}
	}

	// With -correspond the loop below already decides correct-vs-buggy (the
	// built instance IS the buggy one) and prints its evidence; the
	// dedicated buggy report would repeat that decision verbatim.
	if *buggy && !*correspond {
		fmt.Println()
		runBuggyEvidence(ctx, inst)
	}
	if *correspond {
		fmt.Println()
		runCorrespondence(ctx, inst)
	}
	if allHold {
		return 0
	}
	return 1
}

// runBuggyEvidence decides the correspondence between the correct cutoff
// ring and the buggy instance and prints the machine-extracted,
// replay-confirmed distinguishing formula — the evidence that the buggy
// family genuinely differs from the correct one, not just a failed spec.
func runBuggyEvidence(ctx context.Context, buggy *podc.Ring) {
	small := podc.RingCutoffSize
	if buggy.Size() < small {
		small = 2
	}
	correct, err := podc.BuildRing(small)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ringverify:", err)
		return
	}
	ev, err := podc.ExplainRingCorrespondence(ctx, correct, buggy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ringverify:", err)
		return
	}
	if ev == nil {
		fmt.Printf("correct M_%d and buggy M_%d indexed-correspond (unexpected)\n", small, buggy.Size())
		return
	}
	fmt.Printf("correct M_%d and buggy M_%d DO NOT indexed-correspond\n", small, buggy.Size())
	printEvidence(ev)
}

// printEvidence renders a correspondence evidence object.
func printEvidence(ev *podc.Evidence) {
	fmt.Printf("  failing pair:    (i=%d, i'=%d)\n", ev.Pair.I, ev.Pair.I2)
	fmt.Printf("  reason:          %s\n", ev.Reason)
	if ev.FormulaText != "" {
		fmt.Printf("  distinguishing:  %s\n", ev.FormulaText)
		fmt.Printf("  replay:          confirmed=%v (true on the small side's reduction, false on the large side's)\n", ev.Confirmed)
	}
	if len(ev.GamePath) > 0 {
		fmt.Printf("  game path (%s): %v", ev.GameSide, ev.GamePath)
		if ev.GameLoop >= 0 {
			fmt.Printf(" (loops back to position %d)", ev.GameLoop)
		}
		fmt.Println()
	}
}

func buildInstance(r int, buggy bool) (*podc.Ring, error) {
	if buggy {
		return podc.BuildBuggyRing(r)
	}
	return podc.BuildRing(r)
}

func runCorrespondence(ctx context.Context, inst *podc.Ring) {
	for _, small := range []int{2, podc.RingCutoffSize} {
		if small > inst.Size() {
			continue
		}
		smallInst, err := podc.BuildRing(small)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ringverify:", err)
			return
		}
		res, ev, err := podc.RingCorrespondenceWithEvidence(ctx, smallInst, inst)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ringverify:", err)
			return
		}
		verdict := "DO NOT indexed-correspond"
		if res.Corresponds() {
			verdict = "indexed-correspond (Theorem 5 transfers restricted ICTL*)"
		}
		fmt.Printf("M_%d and M_%d %s\n", small, inst.Size(), verdict)
		if ev != nil {
			printEvidence(ev)
		}
	}
	chi := podc.RingDistinguishingFormula()
	verifier, err := podc.NewVerifier(ctx, inst.Structure())
	if err != nil {
		return
	}
	if holds, err := verifier.Check(ctx, chi); err == nil {
		fmt.Printf("distinguishing formula %s\n  holds on M_%d: %v (it is false on M_2)\n", chi, inst.Size(), holds)
	}
}

func runLocal(ctx context.Context, r, samples int, seed int64) int {
	fmt.Printf("local clause checking of the Section 5 relation against a %d-process ring (state graph never built)\n", r)
	violationsFound := false
	for _, variant := range []podc.RingRelationVariant{podc.RingPaperRelation, podc.RingCorrectedRelation} {
		rep, err := podc.RingLocalCheck(ctx, variant, r, samples, seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ringverify:", err)
			return 2
		}
		fmt.Printf("  %-9s relation: %d violations over %d sampled states\n", rep.Variant, rep.Violations, rep.SampledStates)
		if rep.FirstViolation != "" {
			fmt.Println("    e.g.", rep.FirstViolation)
			violationsFound = true
		}
	}
	if violationsFound {
		fmt.Println("=> the Appendix relation is not a correspondence at this ring size either;")
		fmt.Println("   use the three-process cutoff result instead (see EXPERIMENTS.md, E6).")
		return 1
	}
	return 0
}
