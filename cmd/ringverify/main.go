// Command ringverify runs the paper's Section 5 verification for the
// token-ring mutual exclusion protocol at a chosen ring size, and optionally
// reproduces the correspondence analysis against the cutoff instance and the
// local refutation of the Appendix relation at very large rings.
//
// Usage:
//
//	ringverify -r 5                 # build M_5, check invariants + properties
//	ringverify -r 6 -correspond     # also decide the correspondence with M_3 (and M_2)
//	ringverify -r 1000 -local 50    # local clause checking only (no state graph)
//	ringverify -r 4 -buggy          # show the counterexample on the broken variant
//
// Exit status 0 when every checked property holds, 1 otherwise, 2 on errors.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/bisim"
	"repro/internal/logic"
	"repro/internal/mc"
	"repro/internal/ring"
)

func main() {
	os.Exit(run())
}

func run() int {
	r := flag.Int("r", 4, "number of processes in the ring")
	correspond := flag.Bool("correspond", false, "decide the indexed correspondence with the cutoff instance M_3 and with M_2")
	local := flag.Int("local", 0, "if > 0, skip building M_r and locally check the Appendix relation at this many sampled states")
	buggy := flag.Bool("buggy", false, "verify the deliberately broken protocol variant instead (shows a counterexample)")
	seed := flag.Int64("seed", 1, "random seed for local sampling")
	flag.Parse()

	if *local > 0 {
		return runLocal(*r, *local, *seed)
	}

	inst, err := buildInstance(*r, *buggy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ringverify:", err)
		return 2
	}
	fmt.Println(inst.M.ComputeStats())
	if err := inst.CheckPartitionInvariant(); err != nil {
		fmt.Println("partition invariant:", err)
	} else {
		fmt.Println("partition invariant: holds (structural check)")
	}

	checker := mc.New(inst.M)
	allHold := true
	for _, nf := range append(ring.Invariants(), ring.Properties()...) {
		holds, err := checker.Holds(nf.Formula)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ringverify:", err)
			return 2
		}
		status := "holds"
		if !holds {
			status = "FAILS"
			allHold = false
		}
		fmt.Printf("  %-6s %-28s %s\n", status, nf.Name, nf.Formula)
		if !holds {
			if cx, err := checker.Counterexample(counterexampleShape(nf.Formula, inst), inst.M.Initial()); err == nil {
				fmt.Println("         counterexample:", cx.Format(inst.M))
			}
		}
	}

	if *correspond {
		fmt.Println()
		runCorrespondence(inst)
	}
	if allHold {
		return 0
	}
	return 1
}

func buildInstance(r int, buggy bool) (*ring.Instance, error) {
	if buggy {
		return ring.BuildBuggy(r)
	}
	return ring.Build(r)
}

// counterexampleShape instantiates the indexed quantifiers so the
// counterexample machinery (which handles A-rooted CTL) can be applied.
func counterexampleShape(f logic.Formula, inst *ring.Instance) logic.Formula {
	instantiated, err := logic.Instantiate(f, inst.M.IndexValues())
	if err != nil {
		return f
	}
	return instantiated
}

func runCorrespondence(inst *ring.Instance) {
	for _, small := range []int{2, ring.CutoffSize} {
		if small > inst.R {
			continue
		}
		smallInst, err := ring.Build(small)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ringverify:", err)
			return
		}
		res, err := ring.DecideCorrespondence(smallInst, inst)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ringverify:", err)
			return
		}
		verdict := "DO NOT indexed-correspond"
		if res.Corresponds() {
			verdict = "indexed-correspond (Theorem 5 transfers restricted ICTL*)"
		}
		fmt.Printf("M_%d and M_%d %s\n", small, inst.R, verdict)
	}
	chi := ring.DistinguishingFormula()
	holds, err := mc.New(inst.M).Holds(chi)
	if err == nil {
		fmt.Printf("distinguishing formula %s\n  holds on M_%d: %v (it is false on M_2)\n", chi, inst.R, holds)
	}
}

func runLocal(r, samples int, seed int64) int {
	small, err := ring.Build(2)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ringverify:", err)
		return 2
	}
	rng := rand.New(rand.NewSource(seed))
	next := func(n int) int { return rng.Intn(n) }
	fmt.Printf("local clause checking of the Section 5 relation against a %d-process ring (state graph never built)\n", r)
	violationsFound := false
	for _, variant := range []ring.RelationVariant{ring.PaperRelation, ring.CorrectedRelation} {
		lc, err := ring.NewLocalChecker(variant, small, r)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ringverify:", err)
			return 2
		}
		count := 0
		var first *ring.LocalViolation
		for i := 0; i < samples; i++ {
			g := ring.RandomReachableState(r, next)
			for _, pair := range []bisim.IndexPair{{I: 1, I2: 1}, {I: 2, I2: 2 + next(r-1)}} {
				vs := lc.CheckState(g, pair.I, pair.I2)
				count += len(vs)
				if len(vs) > 0 && first == nil {
					v := vs[0]
					first = &v
				}
			}
		}
		fmt.Printf("  %-9s relation: %d violations over %d sampled states\n", variant, count, samples)
		if first != nil {
			fmt.Println("    e.g.", first.Error())
			violationsFound = true
		}
	}
	if violationsFound {
		fmt.Println("=> the Appendix relation is not a correspondence at this ring size either;")
		fmt.Println("   use the three-process cutoff result instead (see EXPERIMENTS.md, E6).")
		return 1
	}
	return 0
}
