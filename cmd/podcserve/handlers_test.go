package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/pkg/podc"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(newHandler(podc.NewSession(podc.WithWorkers(2)), serverConfig{Timeout: time.Minute}))
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestCheckRing(t *testing.T) {
	ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/check", checkRequest{
		Ring:    4,
		Formula: "forall i . AG (d[i] -> AF c[i])",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out checkResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Holds {
		t.Errorf("liveness should hold on M_4: %s", body)
	}
	if !out.Restricted {
		t.Errorf("the liveness property is restricted ICTL*: %s", body)
	}
	if out.States != 64 {
		t.Errorf("M_4 has 4*2^4 = 64 states, got %d", out.States)
	}
}

func TestCheckInlineStructure(t *testing.T) {
	ts := newTestServer(t)
	structure := `structure light
state 0 initial : green
state 1 : yellow
state 2 : red
trans 0 1
trans 1 2
trans 2 0
`
	resp, body := postJSON(t, ts.URL+"/v1/check", checkRequest{
		Structure: structure,
		Formula:   "AG (yellow -> AX red)",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out checkResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Holds {
		t.Errorf("AG (yellow -> AX red) should hold: %s", body)
	}
}

func TestCheckBadRequests(t *testing.T) {
	ts := newTestServer(t)
	for name, req := range map[string]checkRequest{
		"no structure":   {Formula: "AG p"},
		"both sources":   {Ring: 3, Structure: "structure x\nstate 0 initial\ntrans 0 0\n", Formula: "AG p"},
		"bad formula":    {Ring: 3, Formula: "AG ((("},
		"no formula":     {Ring: 3},
		"structure junk": {Structure: "nonsense directive", Formula: "AG p"},
		"deadlocked":     {Structure: "structure dead\nstate 0 initial : p\nstate 1 : q\ntrans 0 1\n", Formula: "AG EF q"},
		"oversized ring": {Ring: 100, Formula: "AG p"},
	} {
		resp, body := postJSON(t, ts.URL+"/v1/check", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (want 400): %s", name, resp.StatusCode, body)
		}
	}
}

func TestCorrespondOversizedRingIsClientError(t *testing.T) {
	ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/correspond", correspondRequest{Large: 25})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status %d (want 400): %s", resp.StatusCode, body)
	}
}

// TestConcurrentCorrespond is the serving-side acceptance test: many
// concurrent /v1/correspond requests for rings up to r=10 are answered
// correctly from one shared session, with identical concurrent requests
// deduplicated onto one computation.
func TestConcurrentCorrespond(t *testing.T) {
	ts := newTestServer(t)
	sizes := []int{4, 5, 6, 7, 8, 9, 10}
	const clientsPerSize = 3
	var wg sync.WaitGroup
	errs := make(chan error, len(sizes)*clientsPerSize)
	for _, r := range sizes {
		for c := 0; c < clientsPerSize; c++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				resp, body := postJSON(t, ts.URL+"/v1/correspond", correspondRequest{Large: r})
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("r=%d: status %d: %s", r, resp.StatusCode, body)
					return
				}
				var out correspondResponse
				if err := json.Unmarshal(body, &out); err != nil {
					errs <- fmt.Errorf("r=%d: %v", r, err)
					return
				}
				if !out.Corresponds {
					errs <- fmt.Errorf("r=%d: cutoff correspondence should hold: %s", r, body)
				}
			}(r)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestCancelledRequestStopsEngine verifies that a request whose context is
// already past its deadline stops the underlying engine promptly instead of
// computing a correspondence nobody is waiting for.
func TestCancelledRequestStopsEngine(t *testing.T) {
	ts := newTestServer(t)
	data, err := json.Marshal(correspondRequest{Large: 11})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/correspond", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err == nil {
		resp.Body.Close()
		t.Fatalf("expected the client deadline to abort the request, got status %d", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancelled request took %v to return", elapsed)
	}
	// The session must remain usable: the failed computation is not cached,
	// so a healthy retry succeeds.
	resp2, body := postJSON(t, ts.URL+"/v1/correspond", correspondRequest{Large: 4})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("retry after cancellation: status %d: %s", resp2.StatusCode, body)
	}
}

func TestTransferCertificate(t *testing.T) {
	ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/transfer", transferRequest{Large: 5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	cert, err := podc.TransferCertificateFromJSON(body)
	if err != nil {
		t.Fatalf("certificate does not round-trip: %v", err)
	}
	if cert.SmallSize() != podc.RingCutoffSize || cert.LargeSize() != 5 {
		t.Errorf("certificate sizes = (%d, %d), want (%d, 5)", cert.SmallSize(), cert.LargeSize(), podc.RingCutoffSize)
	}
	// The served certificate re-validates against freshly built instances.
	if err := cert.Validate(podc.TokenRingFamily()); err != nil {
		t.Errorf("served certificate fails validation: %v", err)
	}
}

func TestTransferRefusedForTwoProcessCutoff(t *testing.T) {
	ts := newTestServer(t)
	// The reproduction finding: M_2 corresponds to no larger ring, so no
	// certificate exists.
	resp, body := postJSON(t, ts.URL+"/v1/transfer", transferRequest{Small: 2, Large: 4})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d (want 422): %s", resp.StatusCode, body)
	}
}

func TestExperimentEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/experiments/E1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var tbl podc.Table
	if err := json.NewDecoder(resp.Body).Decode(&tbl); err != nil {
		t.Fatal(err)
	}
	if tbl.ID != "E1" || len(tbl.Rows) == 0 {
		t.Errorf("experiment table looks wrong: %+v", tbl)
	}
	if !strings.Contains(tbl.Title, "Fig. 3.1") {
		t.Errorf("unexpected title %q", tbl.Title)
	}

	resp2, err := http.Get(ts.URL + "/v1/experiments/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown experiment: status %d (want 404)", resp2.StatusCode)
	}
}

// TestCorrespondTopologies drives /v1/correspond across the generalised
// families: each topology's cutoff instance corresponds to a larger one,
// and the response echoes the topology it was decided for.
func TestCorrespondTopologies(t *testing.T) {
	ts := newTestServer(t)
	for topo, large := range map[string]int{"star": 6, "line": 6, "tree": 6, "torus": 8} {
		resp, body := postJSON(t, ts.URL+"/v1/correspond", correspondRequest{Topology: topo, Large: large})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", topo, resp.StatusCode, body)
		}
		var out correspondResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if out.Topology != topo {
			t.Errorf("%s: response names topology %q", topo, out.Topology)
		}
		if !out.Corresponds {
			t.Errorf("%s: cutoff correspondence should hold: %s", topo, body)
		}
		if out.Small == 0 {
			t.Errorf("%s: small must default to the topology's cutoff: %s", topo, body)
		}
	}
}

func TestCorrespondTopologyBadRequests(t *testing.T) {
	ts := newTestServer(t)
	for name, req := range map[string]correspondRequest{
		"unknown topology": {Topology: "moebius", Large: 6},
		"odd torus":        {Topology: "torus", Large: 7},
		"small too small":  {Topology: "line", Small: 1, Large: 6},
		"inverted sizes":   {Topology: "star", Small: 5, Large: 4},
	} {
		resp, body := postJSON(t, ts.URL+"/v1/correspond", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (want 400): %s", name, resp.StatusCode, body)
		}
	}
}

// TestTransferTopology builds a transfer certificate for a non-ring family
// and re-validates it against fresh instances of the same topology.
func TestTransferTopology(t *testing.T) {
	ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/transfer", transferRequest{Topology: "star", Large: 6})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	cert, err := podc.TransferCertificateFromJSON(body)
	if err != nil {
		t.Fatalf("decoding certificate: %v", err)
	}
	if cert.FamilyName() != "star" {
		t.Errorf("certificate family %q, want star", cert.FamilyName())
	}
	star, _ := podc.TopologyByName("star")
	if err := cert.Validate(star.Family()); err != nil {
		t.Errorf("certificate fails re-validation: %v", err)
	}
}

// TestCheckEvidence: a failing check with evidence requested returns the
// decisive subformula and a counterexample trace.
func TestCheckEvidence(t *testing.T) {
	ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/check", checkRequest{
		Ring:     3,
		Formula:  "forall i . AG c[i]",
		Evidence: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out checkResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Holds {
		t.Fatalf("AG c[i] cannot hold on M_3: %s", body)
	}
	if out.Evidence == nil {
		t.Fatalf("no evidence in response: %s", body)
	}
	if out.Evidence.Decisive == "" || out.Evidence.Trace == "" {
		t.Errorf("evidence should carry a decisive subformula and a trace: %s", body)
	}
}

// TestCheckEvidenceWitness: a holding existential check yields a witness
// trace.
func TestCheckEvidenceWitness(t *testing.T) {
	ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/check", checkRequest{
		Ring:     3,
		Formula:  "E (true U c[1])",
		Evidence: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out checkResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Holds || out.Evidence == nil || len(out.Evidence.TraceStates) == 0 {
		t.Fatalf("expected a witness trace for EF c[1]: %s", body)
	}
}

// TestCorrespondEvidence: the refuted M_2 vs M_4 correspondence returns a
// replay-confirmed distinguishing formula naming the failing pair.
func TestCorrespondEvidence(t *testing.T) {
	ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/correspond", correspondRequest{
		Topology: "ring",
		Small:    2,
		Large:    4,
		Evidence: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out correspondResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Corresponds {
		t.Fatalf("M_2 and M_4 must not correspond: %s", body)
	}
	if out.Evidence == nil {
		t.Fatalf("no evidence in response: %s", body)
	}
	if out.Evidence.Formula == "" || !out.Evidence.Confirmed {
		t.Errorf("evidence must carry a confirmed distinguishing formula: %s", body)
	}
	if out.Evidence.Pair.I == 0 && out.Evidence.Pair.I2 == 0 {
		t.Errorf("evidence should name the failing index pair: %s", body)
	}
}

// TestCorrespondEvidenceOmittedOnSuccess: a correspondence that holds has
// no evidence object even when requested.
func TestCorrespondEvidenceOmittedOnSuccess(t *testing.T) {
	ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/correspond", correspondRequest{
		Topology: "star",
		Small:    3,
		Large:    5,
		Evidence: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out correspondResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Corresponds {
		t.Fatalf("star M_3 and M_5 should correspond: %s", body)
	}
	if out.Evidence != nil {
		t.Errorf("no evidence expected for a holding correspondence: %s", body)
	}
}

func getJSON(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestStoreStatsDisabled(t *testing.T) {
	ts := newTestServer(t)
	resp, body := getJSON(t, ts.URL+"/v1/store")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out storeStatsResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Enabled {
		t.Fatalf("store must report disabled on a session without WithStore: %s", body)
	}
}

func TestStoreStatsCountsCorrespondenceTraffic(t *testing.T) {
	dir := t.TempDir()
	session := podc.NewSession(podc.WithWorkers(2), podc.WithStore(dir))
	ts := httptest.NewServer(newHandler(session, serverConfig{Timeout: time.Minute}))
	t.Cleanup(ts.Close)

	resp, body := postJSON(t, ts.URL+"/v1/correspond", correspondRequest{Small: 3, Large: 4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("correspond status %d: %s", resp.StatusCode, body)
	}
	resp, body = getJSON(t, ts.URL+"/v1/store")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out storeStatsResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Enabled || out.Misses != 1 || out.Writes != 1 {
		t.Fatalf("after one cold correspondence: %s (want enabled, 1 miss, 1 write)", body)
	}

	// A second service sharing the directory answers the same request from
	// disk: its first correspondence is a store hit, not a recompute.
	session2 := podc.NewSession(podc.WithWorkers(2), podc.WithStore(dir))
	ts2 := httptest.NewServer(newHandler(session2, serverConfig{Timeout: time.Minute}))
	t.Cleanup(ts2.Close)
	resp, body = postJSON(t, ts2.URL+"/v1/correspond", correspondRequest{Small: 3, Large: 4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replayed correspond status %d: %s", resp.StatusCode, body)
	}
	resp, body = getJSON(t, ts2.URL+"/v1/store")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Enabled || out.Hits != 1 {
		t.Fatalf("restarted service stats: %s (want 1 hit)", body)
	}
}
