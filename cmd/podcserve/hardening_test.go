package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/pkg/podc"
)

// TestOversizedBodyIs413 posts a body beyond MaxBody and expects the
// request to be rejected with 413 before anything is computed.
func TestOversizedBodyIs413(t *testing.T) {
	session := podc.NewSession(podc.WithWorkers(2))
	ts := httptest.NewServer(newHandler(session, serverConfig{Timeout: time.Minute, MaxBody: 256}))
	t.Cleanup(ts.Close)

	big := `{"ring": 4, "formula": "` + strings.Repeat("A", 1024) + `"}`
	resp, err := http.Post(ts.URL+"/v1/check", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d: %s (want 413)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "256 byte limit") {
		t.Errorf("413 body should name the limit: %s", body)
	}
}

// TestUnknownFieldIs400 posts a typoed field name and expects a 400 whose
// body names the offending field instead of silently taking a default.
func TestUnknownFieldIs400(t *testing.T) {
	ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/correspond",
		map[string]any{"topolgy": "star", "large": 4})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %s (want 400)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "topolgy") {
		t.Errorf("400 body should name the unknown field: %s", body)
	}
}

// TestLoadShedding429 fills the admission semaphore with no queue behind it
// and expects further requests to be shed with 429, a Retry-After hint, and
// a moving shed counter.
func TestLoadShedding429(t *testing.T) {
	session := podc.NewSession(podc.WithWorkers(2))
	s := newServer(session, serverConfig{
		Timeout:     time.Minute,
		MaxInflight: 1,
		MaxQueue:    -1, // no queue: the second request sheds immediately
		QueueWait:   50 * time.Millisecond,
	})
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)

	// Occupy the only slot directly: handlers and admit share s.sem.
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	resp, body := postJSON(t, ts.URL+"/v1/check",
		checkRequest{Ring: 4, Formula: "forall i . AG (d[i] -> AF c[i])"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d: %s (want 429)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 must carry a Retry-After header")
	}
	if got := metricValue(t, scrapeMetrics(t, ts), "podcserve_shed_total"); got != 1 {
		t.Errorf("podcserve_shed_total = %v, want 1", got)
	}
}

// TestQueuedRequestProceedsWhenSlotFrees parks a request in the wait queue
// and frees the slot before QueueWait expires: the request must be admitted
// and answered, not shed.
func TestQueuedRequestProceedsWhenSlotFrees(t *testing.T) {
	session := podc.NewSession(podc.WithWorkers(2))
	s := newServer(session, serverConfig{
		Timeout:     time.Minute,
		MaxInflight: 1,
		MaxQueue:    8,
		QueueWait:   10 * time.Second,
	})
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)

	s.sem <- struct{}{}
	go func() {
		time.Sleep(100 * time.Millisecond)
		<-s.sem
	}()

	resp, body := postJSON(t, ts.URL+"/v1/check",
		checkRequest{Ring: 4, Formula: "forall i . AG (d[i] -> AF c[i])"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s (want 200 after the slot freed)", resp.StatusCode, body)
	}
}

// sseRow is one decoded "event: row" payload.
type sseRow struct {
	Topology    string `json:"topology"`
	R           int    `json:"r"`
	States      int    `json:"states"`
	Transitions int    `json:"transitions"`
	Corresponds bool   `json:"corresponds"`
	MaxDegree   int    `json:"max_degree"`
	Error       string `json:"error,omitempty"`
}

// readSSE consumes a server-sent event stream, returning the decoded row
// events and the row count the terminal done event reported.
func readSSE(t *testing.T, r io.Reader) (rows []sseRow, done int) {
	t.Helper()
	done = -1
	sc := bufio.NewScanner(r)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "row":
				var row sseRow
				if err := json.Unmarshal([]byte(data), &row); err != nil {
					t.Fatalf("bad row payload %q: %v", data, err)
				}
				rows = append(rows, row)
			case "done":
				var d sweepDone
				if err := json.Unmarshal([]byte(data), &d); err != nil {
					t.Fatalf("bad done payload %q: %v", data, err)
				}
				done = d.Rows
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading SSE stream: %v", err)
	}
	return rows, done
}

// TestSSESweepMatchesLibrary streams GET /v1/sweep and checks every
// deterministic field of every row against the library's own
// SweepTopology over the same sizes.
func TestSSESweepMatchesLibrary(t *testing.T) {
	session := podc.NewSession(podc.WithWorkers(2))
	ts := httptest.NewServer(newHandler(session, serverConfig{Timeout: time.Minute}))
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/v1/sweep?topology=ring&from=4&to=6")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	rows, done := readSSE(t, resp.Body)
	if done != len(rows) {
		t.Fatalf("done event reported %d rows, stream carried %d", done, len(rows))
	}

	topo, _ := podc.TopologyByName("ring")
	var want []podc.SweepResult
	for row := range podc.NewSession(podc.WithWorkers(2)).SweepTopology(context.Background(), topo, []int{4, 5, 6}) {
		want = append(want, row)
	}
	if len(rows) != len(want) {
		t.Fatalf("streamed %d rows, library produced %d", len(rows), len(want))
	}
	// Both streams are in completion order; compare by size.
	sort.Slice(rows, func(i, j int) bool { return rows[i].R < rows[j].R })
	sort.Slice(want, func(i, j int) bool { return want[i].R < want[j].R })
	for i, w := range want {
		got := rows[i]
		if w.Err != nil {
			if got.Error == "" {
				t.Errorf("r=%d: library errored (%v), stream did not", w.R, w.Err)
			}
			continue
		}
		if got.Topology != w.Topology || got.R != w.R || got.States != w.States ||
			got.Transitions != w.Transitions || got.Corresponds != w.Corresponds ||
			got.MaxDegree != w.MaxDegree || got.Error != "" {
			t.Errorf("r=%d: stream %+v != library %+v", w.R, got, w)
		}
	}
}

// TestSSESweepBadTopologyIs400 checks that parameter errors are reported as
// a JSON 400, not an empty event stream.
func TestSSESweepBadTopologyIs400(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/sweep?topology=moebius")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %s (want 400)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "moebius") {
		t.Errorf("400 body should name the topology: %s", body)
	}
}

// scrapeMetrics fetches /metrics and returns the exposition text.
func scrapeMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricValue sums every series of the named metric in the exposition text
// (so labelled families like podcserve_requests_total aggregate across
// their children).  It fails the test if the family is absent.
func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	sum, found := 0.0, false
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, name+" ") && !strings.HasPrefix(line, name+"{") {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("unparseable sample %q: %v", line, err)
		}
		sum += v
		found = true
	}
	if !found {
		t.Fatalf("metric %s not exposed", name)
	}
	return sum
}

// TestMetricsEndpointCountersMove drives traffic through every layer — the
// HTTP handler, the session cache, the verdict store and the refinement
// engine — and asserts the corresponding exposed counters advance.
func TestMetricsEndpointCountersMove(t *testing.T) {
	session := podc.NewSession(podc.WithWorkers(2), podc.WithStore(t.TempDir()))
	ts := httptest.NewServer(newHandler(session, serverConfig{Timeout: time.Minute}))
	t.Cleanup(ts.Close)

	before := scrapeMetrics(t, ts)
	// The engine counter is process-global, so diff rather than assert
	// absolute values.
	refineBefore := metricValue(t, before, "podc_engine_refinements_total")
	if strings.Contains(before, "podcserve_requests_total{") {
		t.Errorf("requests_total has samples before any traffic:\n%s", before)
	}

	req := correspondRequest{Small: 3, Large: 4}
	resp, body := postJSON(t, ts.URL+"/v1/correspond", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("correspond status %d: %s", resp.StatusCode, body)
	}
	// The identical request again: a session cache hit.
	resp, body = postJSON(t, ts.URL+"/v1/correspond", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("correspond status %d: %s", resp.StatusCode, body)
	}

	after := scrapeMetrics(t, ts)
	if got := metricValue(t, after, "podcserve_requests_total"); got != 2 {
		t.Errorf("podcserve_requests_total = %v, want 2", got)
	}
	// One correspond request runs several cached computations (the instance
	// builds plus the correspondence itself), so assert floors, not exact
	// counts.
	atLeast := []struct {
		name string
		want float64
	}{
		{"podc_session_cache_misses_total", 1},
		{"podc_session_cache_hits_total", 1},
		{"podc_store_enabled", 1},
		{"podc_store_misses_total", 1},
		{"podc_store_writes_total", 1},
	}
	for _, c := range atLeast {
		if got := metricValue(t, after, c.name); got < c.want {
			t.Errorf("%s = %v, want at least %v", c.name, got, c.want)
		}
	}
	if got := metricValue(t, after, "podc_engine_refinements_total"); got <= refineBefore {
		t.Errorf("podc_engine_refinements_total did not advance (%v -> %v)", refineBefore, got)
	}
	if got := metricValue(t, after, "podcserve_request_seconds_count"); got != 2 {
		t.Errorf("podcserve_request_seconds_count = %v, want 2", got)
	}
	// The histogram exposes cumulative buckets ending in +Inf.
	if !strings.Contains(after, `podcserve_request_seconds_bucket{endpoint="/v1/correspond",le="+Inf"}`) {
		t.Error("latency histogram missing the +Inf bucket for /v1/correspond")
	}
}

// swapLogOutput redirects the standard logger into w until the returned
// restore function runs.
func swapLogOutput(w io.Writer) func() {
	old := log.Writer()
	log.SetOutput(w)
	return func() { log.SetOutput(old) }
}

// TestWriteJSONLogsEncodeFailures exercises the satellite fix directly: an
// unencodable value must leave a log line naming the request, because the
// client can no longer be told once the header is out.
func TestWriteJSONLogsEncodeFailures(t *testing.T) {
	var buf bytes.Buffer
	restore := swapLogOutput(&buf)
	defer restore()

	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/v1/doomed", nil)
	writeJSON(rec, req, http.StatusOK, map[string]any{"f": func() {}})
	if !strings.Contains(buf.String(), "/v1/doomed") {
		t.Errorf("encode failure not logged with the request path: %q", buf.String())
	}
}
