package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/pkg/podc"
)

// maxSweepSizes bounds how many sizes one sweep request may ask for, so a
// single GET cannot enqueue unbounded work on the shared session.
const maxSweepSizes = 64

// sweepEvent is the data payload of one "row" server-sent event: the
// library's SweepResult plus its error rendered as a string (SweepResult
// deliberately keeps Err out of its JSON form).
type sweepEvent struct {
	podc.SweepResult
	Error string `json:"error,omitempty"`
}

// sweepDone is the data payload of the terminal "done" event.
type sweepDone struct {
	Rows int `json:"rows"`
}

// handleSweep streams GET /v1/sweep as server-sent events: one "row" event
// per size the moment the runner decides it (completion order, exactly as
// Session.SweepTopology yields them), then a "done" event with the row
// count.  Closing the connection cancels the remaining sweep work through
// the request context.
//
//	GET /v1/sweep?topology=ring&from=4&to=14
//	GET /v1/sweep?topology=torus&sizes=4,6,8
func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) {
	topo, sizes, err := parseSweepQuery(r)
	if err != nil {
		httpError(w, r, http.StatusBadRequest, err)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, r, http.StatusInternalServerError, fmt.Errorf("connection does not support streaming"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	rows := 0
	for row := range s.session.SweepTopology(r.Context(), topo, sizes) {
		ev := sweepEvent{SweepResult: row}
		if row.Err != nil {
			ev.Error = row.Err.Error()
		}
		data, err := json.Marshal(ev)
		if err != nil {
			// Marshalling a plain struct cannot realistically fail; if it
			// does, surface it in-band rather than silently dropping a row.
			data = []byte(fmt.Sprintf(`{"r":%d,"error":%q}`, row.R, err.Error()))
		}
		if _, err := fmt.Fprintf(w, "event: row\ndata: %s\n\n", data); err != nil {
			// Client gone: breaking out of the range cancels the runner.
			return
		}
		fl.Flush()
		rows++
		if s.metrics != nil {
			s.metrics.sweepRows.Inc()
		}
	}
	done, _ := json.Marshal(sweepDone{Rows: rows})
	fmt.Fprintf(w, "event: done\ndata: %s\n\n", done)
	fl.Flush()
}

// parseSweepQuery resolves the topology and size list of a sweep request.
// "sizes" (comma-separated) wins when given; otherwise "from".."to" form an
// inclusive range defaulting to the topology's cutoff size and the last
// default-sweep size respectively.  Sizes the topology cannot instantiate
// are skipped, exactly as the library's sweeps skip them.
func parseSweepQuery(r *http.Request) (podc.Topology, []int, error) {
	q := r.URL.Query()
	name := q.Get("topology")
	if name == "" {
		name = "ring"
	}
	topo, ok := podc.TopologyByName(name)
	if !ok {
		return podc.Topology{}, nil, fmt.Errorf("unknown topology %q (have %s)",
			name, strings.Join(podc.TopologyNames(), ", "))
	}

	var candidates []int
	if raw := q.Get("sizes"); raw != "" {
		for _, f := range strings.Split(raw, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return podc.Topology{}, nil, fmt.Errorf("sizes: %q is not an integer", f)
			}
			candidates = append(candidates, n)
		}
	} else {
		from := topo.CutoffSize()
		if v := q.Get("from"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return podc.Topology{}, nil, fmt.Errorf("from: %q is not an integer", v)
			}
			from = n
		}
		defaults := podc.DefaultSweepSizes()
		to := defaults[len(defaults)-1]
		if v := q.Get("to"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return podc.Topology{}, nil, fmt.Errorf("to: %q is not an integer", v)
			}
			to = n
		}
		if to < from {
			return podc.Topology{}, nil, fmt.Errorf("need from <= to, got from=%d to=%d", from, to)
		}
		if to-from+1 > maxSweepSizes {
			return podc.Topology{}, nil, fmt.Errorf("range spans %d sizes, limit is %d", to-from+1, maxSweepSizes)
		}
		for n := from; n <= to; n++ {
			candidates = append(candidates, n)
		}
	}
	if len(candidates) > maxSweepSizes {
		return podc.Topology{}, nil, fmt.Errorf("%d sizes requested, limit is %d", len(candidates), maxSweepSizes)
	}

	var sizes []int
	for _, n := range candidates {
		if topo.ValidSize(n) == nil {
			sizes = append(sizes, n)
		}
	}
	if len(sizes) == 0 {
		return podc.Topology{}, nil, fmt.Errorf("no valid %s sizes among %v", topo.Name(), candidates)
	}
	return topo, sizes, nil
}
