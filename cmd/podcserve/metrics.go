package main

import (
	"repro/internal/bisim"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/pkg/podc"
)

// serverMetrics is the service's metrics surface: one obs.Registry exposed
// at GET /metrics, instrumented at every layer the request passes through —
// the HTTP handler (per-endpoint traffic, latency, in-flight, status
// classes, load shedding), the shared Session (cache hits/misses and
// in-flight dedup joins), the persistent verdict store (hits/misses/
// invalid/writes, replacing the one-shot /v1/store counter dump as the way
// to *watch* the store), and the refinement engines (process-wide compute
// calls, seed-audit outcomes, parallel splitter batches).
//
// Handler-side instruments are written on the request path; everything
// below the handler joins as a CounterFunc/GaugeFunc sampled at scrape
// time from counters those layers already keep, so no engine imports the
// metrics package.
type serverMetrics struct {
	registry *obs.Registry

	// requests counts finished requests by endpoint and status class
	// ("2xx".."5xx"); latency buckets their wall-clock seconds per endpoint;
	// inflight tracks requests currently inside each endpoint's handler.
	requests *obs.CounterVec
	latency  *obs.HistogramVec
	inflight *obs.GaugeVec

	// shed counts requests rejected 429 by admission control; sweepRows
	// counts SSE sweep rows streamed to clients.
	shed      *obs.Counter
	sweepRows *obs.Counter
}

// newServerMetrics builds the registry over the given session.  The
// admission queue depth is sampled from the server after the handler is
// wired (see newHandler), so the gauge takes a closure.
func newServerMetrics(session *podc.Session, queueDepth, slotsBusy func() int64) *serverMetrics {
	reg := obs.NewRegistry()
	m := &serverMetrics{
		registry: reg,
		requests: reg.CounterVec("podcserve_requests_total",
			"Finished HTTP requests by endpoint and status class.", "endpoint", "code"),
		latency: reg.HistogramVec("podcserve_request_seconds",
			"Request wall-clock latency by endpoint.", obs.DefBuckets, "endpoint"),
		inflight: reg.GaugeVec("podcserve_inflight_requests",
			"Requests currently being handled, by endpoint.", "endpoint"),
		shed: reg.Counter("podcserve_shed_total",
			"Requests rejected with 429 by admission control (semaphore full and queue full or wait expired)."),
		sweepRows: reg.Counter("podcserve_sweep_rows_total",
			"Sweep rows streamed over /v1/sweep server-sent events."),
	}
	reg.GaugeFunc("podcserve_admission_queue_depth",
		"Requests waiting for an admission slot.", func() float64 { return float64(queueDepth()) })
	reg.GaugeFunc("podcserve_admission_slots_busy",
		"Admission slots currently held by running requests.", func() float64 { return float64(slotsBusy()) })

	reg.CounterFunc("podc_session_cache_hits_total",
		"Session cache lookups answered by a completed cached computation.",
		func() int64 { return session.CacheStats().Hits })
	reg.CounterFunc("podc_session_cache_misses_total",
		"Session cache lookups that started a fresh computation.",
		func() int64 { return session.CacheStats().Misses })
	reg.CounterFunc("podc_session_cache_joins_total",
		"Session cache lookups deduplicated onto an identical in-flight computation.",
		func() int64 { return session.CacheStats().Joins })

	reg.GaugeFunc("podc_store_enabled",
		"1 when the persistent verdict store is configured and usable, 0 otherwise.",
		func() float64 {
			if _, ok := session.StoreStats(); ok {
				return 1
			}
			return 0
		})
	storeCounter := func(name, help string, f func(store.Stats) int64) {
		reg.CounterFunc(name, help, func() int64 {
			st, _ := session.StoreStats()
			return f(st)
		})
	}
	storeCounter("podc_store_hits_total",
		"Verdict store reads that returned a valid entry.",
		func(st store.Stats) int64 { return st.Hits })
	storeCounter("podc_store_misses_total",
		"Verdict store reads that found no entry.",
		func(st store.Stats) int64 { return st.Misses })
	storeCounter("podc_store_invalid_total",
		"Verdict store entries rejected by an integrity check and recomputed.",
		func(st store.Stats) int64 { return st.Invalid })
	storeCounter("podc_store_writes_total",
		"Verdict store entries written.",
		func(st store.Stats) int64 { return st.Writes })

	reg.CounterFunc("podc_engine_refinements_total",
		"Process-wide partition-refinement computations (store replays never reach the engine).",
		bisim.ComputeCalls)
	reg.CounterFunc("podc_engine_seed_accepted_total",
		"Seeded refinements whose warm-start seed passed the quotient audit.",
		func() int64 { a, _ := bisim.SeedOutcomes(); return a })
	reg.CounterFunc("podc_engine_seed_rejected_total",
		"Seeded refinements whose seed failed the audit and recomputed cold.",
		func() int64 { _, r := bisim.SeedOutcomes(); return r })
	reg.CounterFunc("podc_engine_refine_batches_total",
		"Splitter-queue batches drained by the parallel refinement engine.",
		bisim.RefineBatches)
	return m
}

// codeClass collapses a status code to its exposition class ("2xx".."5xx").
func codeClass(status int) string {
	switch {
	case status >= 200 && status < 300:
		return "2xx"
	case status >= 300 && status < 400:
		return "3xx"
	case status >= 400 && status < 500:
		return "4xx"
	default:
		return "5xx"
	}
}
