package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/pkg/podc"
)

// server holds the shared session every handler answers from.
type server struct {
	session *podc.Session
	timeout time.Duration
}

// newHandler returns the service's HTTP handler over the given session.
// timeout bounds each request's computation (0 means no bound beyond the
// client's own disconnect).
func newHandler(session *podc.Session, timeout time.Duration) http.Handler {
	s := &server{session: session, timeout: timeout}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/check", s.handleCheck)
	mux.HandleFunc("POST /v1/correspond", s.handleCorrespond)
	mux.HandleFunc("POST /v1/transfer", s.handleTransfer)
	mux.HandleFunc("GET /v1/experiments/{id}", s.handleExperiment)
	mux.HandleFunc("GET /v1/store", s.handleStoreStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// requestContext derives the computation context for one request.
func (s *server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.timeout > 0 {
		return context.WithTimeout(r.Context(), s.timeout)
	}
	return context.WithCancel(r.Context())
}

// checkRequest is the body of POST /v1/check.  The structure is given
// either as a ring size (served from the session cache) or inline in the
// library's text format.
type checkRequest struct {
	// Ring selects the token-ring instance M_ring.
	Ring int `json:"ring,omitempty"`
	// Structure is an inline structure in the text format (alternative to
	// Ring).
	Structure string `json:"structure,omitempty"`
	// Formula is the CTL*/ICTL* formula to check (required).
	Formula string `json:"formula"`
	// Minimize quotients an inline structure before checking.
	Minimize bool `json:"minimize,omitempty"`
	// Evidence requests an explanation of the verdict: the decisive
	// subformula and, where its shape admits one, a witness or
	// counterexample trace.
	Evidence bool `json:"evidence,omitempty"`
}

// checkEvidence is the explanation object of a /v1/check response.
type checkEvidence struct {
	Decisive      string `json:"decisive,omitempty"`
	DecisiveHolds bool   `json:"decisive_holds"`
	Trace         string `json:"trace,omitempty"`
	TraceStates   []int  `json:"trace_states,omitempty"`
	TraceLoop     int    `json:"trace_loop"`
	Note          string `json:"note,omitempty"`
}

type checkResponse struct {
	Holds      bool           `json:"holds"`
	Formula    string         `json:"formula"`
	Structure  string         `json:"structure"`
	States     int            `json:"states"`
	Restricted bool           `json:"restricted"`
	Evidence   *checkEvidence `json:"evidence,omitempty"`
	ElapsedMS  int64          `json:"elapsed_ms"`
}

// explainCheck runs Verifier.Explain and packages the explanation.
func explainCheck(ctx context.Context, v *podc.Verifier, formula podc.Formula) (*checkEvidence, error) {
	ex, err := v.Explain(ctx, formula)
	if err != nil {
		return nil, err
	}
	out := &checkEvidence{DecisiveHolds: ex.DecisiveHolds, Note: ex.Note, TraceLoop: -1}
	if ex.Decisive.IsValid() {
		out.Decisive = ex.Decisive.String()
	}
	if ex.Trace != nil {
		out.Trace = ex.Trace.String()
		out.TraceLoop = ex.Trace.LoopStart
		for _, s := range ex.Trace.States {
			out.TraceStates = append(out.TraceStates, int(s))
		}
	}
	return out, nil
}

func (s *server) handleCheck(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := s.requestContext(r)
	defer cancel()
	var req checkRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	formula, err := podc.ParseFormula(req.Formula)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	start := time.Now()
	resp := checkResponse{Formula: formula.String(), Restricted: formula.IsRestricted()}
	switch {
	case req.Ring > 0 && req.Structure != "":
		httpError(w, http.StatusBadRequest, errors.New("give either ring or structure, not both"))
		return
	case req.Ring > 0:
		rg, err := s.session.Ring(ctx, req.Ring)
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		holds, err := s.session.CheckRing(ctx, req.Ring, formula)
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		resp.Holds = holds
		resp.Structure = rg.Structure().Name()
		resp.States = rg.Structure().NumStates()
		if req.Evidence {
			v, err := s.session.RingVerifier(ctx, req.Ring)
			if err != nil {
				httpError(w, statusFor(err), err)
				return
			}
			ev, err := explainCheck(ctx, v, formula)
			if err != nil {
				httpError(w, statusFor(err), err)
				return
			}
			resp.Evidence = ev
		}
	case req.Structure != "":
		m, err := podc.ParseStructure(req.Structure)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		// CTL* semantics needs a total transition relation; a deadlocked
		// structure would get a verdict the logic does not define.
		if err := m.Validate(); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		opts := []podc.Option{}
		if req.Minimize {
			opts = append(opts, podc.WithMinimize())
		}
		v, err := podc.NewVerifier(ctx, m, opts...)
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		holds, err := v.Check(ctx, formula)
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		resp.Holds = holds
		resp.Structure = m.Name()
		resp.States = v.Structure().NumStates()
		if req.Evidence {
			ev, err := explainCheck(ctx, v, formula)
			if err != nil {
				httpError(w, statusFor(err), err)
				return
			}
			resp.Evidence = ev
		}
	default:
		httpError(w, http.StatusBadRequest, errors.New("missing ring size or inline structure"))
		return
	}
	resp.ElapsedMS = time.Since(start).Milliseconds()
	writeJSON(w, http.StatusOK, resp)
}

// correspondRequest is the body of POST /v1/correspond.
type correspondRequest struct {
	// Topology selects the family to compare within ("ring", "star",
	// "line", "tree", "torus"); it defaults to the token ring.
	Topology string `json:"topology,omitempty"`
	// Small and Large select the instance sizes to compare (Small defaults
	// to the topology's cutoff, e.g. 3 for the ring).
	Small int `json:"small,omitempty"`
	Large int `json:"large"`
	// Evidence requests, for a failed correspondence, the machine-checked
	// explanation: the failing index pair and the distinguishing formula
	// over its reductions, replayed through the model checker.
	Evidence bool `json:"evidence,omitempty"`
}

// correspondEvidence is the explanation object of a failed /v1/correspond.
type correspondEvidence struct {
	Reason    string         `json:"reason"`
	Pair      podc.IndexPair `json:"pair"`
	Formula   string         `json:"formula,omitempty"`
	Confirmed bool           `json:"confirmed"`
	GameSide  string         `json:"game_side,omitempty"`
	GamePath  []int          `json:"game_path,omitempty"`
	GameLoop  int            `json:"game_loop"`
}

type correspondResponse struct {
	Topology     string              `json:"topology"`
	Small        int                 `json:"small"`
	Large        int                 `json:"large"`
	Corresponds  bool                `json:"corresponds"`
	MaxDegree    int                 `json:"max_degree"`
	IndexPairs   int                 `json:"index_pairs"`
	FailingPairs []podc.IndexPair    `json:"failing_pairs,omitempty"`
	Evidence     *correspondEvidence `json:"evidence,omitempty"`
	ElapsedMS    int64               `json:"elapsed_ms"`
}

// resolveFamilyPair validates the topology/small/large triple shared by
// the correspond and transfer endpoints, applying the topology and cutoff
// defaults.  It writes the error response itself and reports success.
func resolveFamilyPair(w http.ResponseWriter, topology string, small, large *int) (podc.Topology, bool) {
	if topology == "" {
		topology = "ring"
	}
	topo, ok := podc.TopologyByName(topology)
	if !ok {
		httpError(w, http.StatusBadRequest, fmt.Errorf("unknown topology %q (have %s)",
			topology, strings.Join(podc.TopologyNames(), ", ")))
		return podc.Topology{}, false
	}
	if *small == 0 {
		*small = topo.CutoffSize()
	}
	if err := topo.ValidSize(*small); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("small size: %w", err))
		return podc.Topology{}, false
	}
	if err := topo.ValidSize(*large); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("large size: %w", err))
		return podc.Topology{}, false
	}
	if *large < *small {
		httpError(w, http.StatusBadRequest, fmt.Errorf("need small <= large, got small=%d large=%d", *small, *large))
		return podc.Topology{}, false
	}
	return topo, true
}

func (s *server) handleCorrespond(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := s.requestContext(r)
	defer cancel()
	var req correspondRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	topo, ok := resolveFamilyPair(w, req.Topology, &req.Small, &req.Large)
	if !ok {
		return
	}
	start := time.Now()
	corr, err := s.session.Correspondence(ctx, topo, req.Small, req.Large)
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	resp := correspondResponse{
		Topology:     topo.Name(),
		Small:        req.Small,
		Large:        req.Large,
		Corresponds:  corr.Corresponds(),
		MaxDegree:    corr.MaxDegree(),
		IndexPairs:   len(corr.IndexRelation()),
		FailingPairs: corr.FailingPairs(),
	}
	if req.Evidence && !corr.Corresponds() {
		ev, err := s.session.CorrespondenceEvidence(ctx, topo, req.Small, req.Large)
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		if ev != nil {
			out := &correspondEvidence{
				Reason:    ev.Reason,
				Pair:      ev.Pair,
				Formula:   ev.FormulaText,
				Confirmed: ev.Confirmed,
				GameSide:  ev.GameSide,
				GameLoop:  ev.GameLoop,
			}
			for _, s := range ev.GamePath {
				out.GamePath = append(out.GamePath, int(s))
			}
			resp.Evidence = out
		}
	}
	resp.ElapsedMS = time.Since(start).Milliseconds()
	writeJSON(w, http.StatusOK, resp)
}

// transferRequest is the body of POST /v1/transfer.
type transferRequest struct {
	// Topology selects the family (defaults to the token ring).
	Topology string `json:"topology,omitempty"`
	Small    int    `json:"small,omitempty"`
	Large    int    `json:"large"`
}

func (s *server) handleTransfer(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := s.requestContext(r)
	defer cancel()
	var req transferRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	topo, ok := resolveFamilyPair(w, req.Topology, &req.Small, &req.Large)
	if !ok {
		return
	}
	cert, err := s.session.TransferCertificate(ctx, topo, req.Small, req.Large)
	if err != nil {
		// "do not correspond" is a client-side fact, not a server fault.
		status := statusFor(err)
		if status == http.StatusInternalServerError && strings.Contains(err.Error(), "do not correspond") {
			status = http.StatusUnprocessableEntity
		}
		httpError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, cert)
}

func (s *server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := s.requestContext(r)
	defer cancel()
	id := r.PathValue("id")
	tbl, err := s.session.Experiment(ctx, id)
	if err != nil {
		status := statusFor(err)
		if status == http.StatusInternalServerError && strings.Contains(err.Error(), "unknown experiment") {
			status = http.StatusNotFound
		}
		httpError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, tbl)
}

// storeStatsResponse is the body of GET /v1/store.
type storeStatsResponse struct {
	// Enabled reports whether the service has a working verdict store
	// (-store flag given and the directory usable).
	Enabled bool  `json:"enabled"`
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	// Invalid counts entries that existed but failed an integrity check
	// and were recomputed.
	Invalid int64 `json:"invalid"`
	Writes  int64 `json:"writes"`
}

// handleStoreStats reports the persistent verdict store's counters, so an
// operator can see whether a service restart is answering its battery from
// disk or re-deciding everything.
func (s *server) handleStoreStats(w http.ResponseWriter, r *http.Request) {
	st, ok := s.session.StoreStats()
	writeJSON(w, http.StatusOK, storeStatsResponse{
		Enabled: ok,
		Hits:    st.Hits,
		Misses:  st.Misses,
		Invalid: st.Invalid,
		Writes:  st.Writes,
	})
}

// statusFor maps computation errors to HTTP statuses: a cancelled or
// expired request context is the client's doing, and a size beyond the
// explicit-construction limit is an input that can never succeed.
func statusFor(err error) int {
	switch {
	case errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, podc.ErrTooLarge):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
