package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/pkg/podc"
)

// serverConfig are the service's operational knobs, every one flag-tunable
// from main.
type serverConfig struct {
	// Timeout bounds each request's computation (0 means no bound beyond
	// the client's own disconnect).
	Timeout time.Duration
	// MaxBody caps the request body in bytes; a larger body is rejected
	// with 413 before it can buffer into the decoder.
	MaxBody int64
	// MaxInflight is the admission-control concurrency limit over the
	// computing endpoints; MaxQueue bounds how many requests may wait for a
	// slot, and QueueWait how long each waits before being shed with 429.
	MaxInflight int
	MaxQueue    int
	QueueWait   time.Duration
}

// defaultConfig are the production defaults (also the flag defaults).
func defaultConfig() serverConfig {
	return serverConfig{
		Timeout:     2 * time.Minute,
		MaxBody:     1 << 20, // 1 MiB: the largest legitimate inline structure is well under this
		MaxInflight: 64,
		MaxQueue:    256,
		QueueWait:   5 * time.Second,
	}
}

// withDefaults fills zero fields so tests can set only what they constrain.
// A negative MaxQueue means "no queue at all" (zero is taken by the default).
func (c serverConfig) withDefaults() serverConfig {
	d := defaultConfig()
	if c.Timeout == 0 {
		c.Timeout = d.Timeout
	}
	if c.MaxBody == 0 {
		c.MaxBody = d.MaxBody
	}
	if c.MaxInflight == 0 {
		c.MaxInflight = d.MaxInflight
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = d.MaxQueue
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.QueueWait == 0 {
		c.QueueWait = d.QueueWait
	}
	return c
}

// server holds the shared session every handler answers from, the admission
// semaphore, and the metrics surface.
type server struct {
	session *podc.Session
	cfg     serverConfig
	metrics *serverMetrics

	// sem holds one token per admitted in-flight computation; queued counts
	// requests waiting for a token.
	sem    chan struct{}
	queued atomic.Int64
}

// newServer wires the session, config and metrics registry together.
func newServer(session *podc.Session, cfg serverConfig) *server {
	cfg = cfg.withDefaults()
	s := &server{session: session, cfg: cfg, sem: make(chan struct{}, cfg.MaxInflight)}
	s.metrics = newServerMetrics(session,
		func() int64 { return s.queued.Load() },
		func() int64 { return int64(len(s.sem)) })
	return s
}

// handler returns the service's HTTP handler: every computing endpoint is
// wrapped in the metrics middleware and admission control; the probes
// (/healthz, /metrics, /v1/store) bypass admission so an operator can always
// see a saturated service.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	admitted := func(endpoint string, h http.HandlerFunc) http.Handler {
		return s.instrument(endpoint, s.admit(h))
	}
	mux.Handle("POST /v1/check", admitted("/v1/check", s.handleCheck))
	mux.Handle("POST /v1/correspond", admitted("/v1/correspond", s.handleCorrespond))
	mux.Handle("POST /v1/transfer", admitted("/v1/transfer", s.handleTransfer))
	mux.Handle("GET /v1/experiments/{id}", admitted("/v1/experiments", s.handleExperiment))
	mux.Handle("GET /v1/sweep", admitted("/v1/sweep", s.handleSweep))
	mux.Handle("GET /v1/store", s.instrument("/v1/store", http.HandlerFunc(s.handleStoreStats)))
	mux.Handle("GET /metrics", s.metrics.registry.Handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// newHandler returns the service's HTTP handler over the given session —
// the convenience constructor the tests use.
func newHandler(session *podc.Session, cfg serverConfig) http.Handler {
	return newServer(session, cfg).handler()
}

// statusRecorder captures the status a handler wrote so the metrics
// middleware can label the request's outcome.  It forwards Flush so the SSE
// handler can stream through it.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument is the metrics middleware: per-endpoint in-flight gauge,
// request counter by status class, and a latency histogram.
func (s *server) instrument(endpoint string, next http.Handler) http.Handler {
	inflight := s.metrics.inflight.With(endpoint)
	latency := s.metrics.latency.With(endpoint)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		inflight.Inc()
		defer inflight.Dec()
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		latency.Observe(time.Since(start).Seconds())
		s.metrics.requests.With(endpoint, codeClass(rec.status)).Inc()
	})
}

// admit is the admission-control middleware: a request either takes a
// semaphore slot immediately, waits in a bounded queue for up to QueueWait,
// or is shed with 429 and a Retry-After hint.  Heavy traffic therefore
// degrades into prompt, explicit rejections instead of an unbounded pile of
// computing goroutines.
func (s *server) admit(next http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
		default:
			// No free slot: join the bounded wait queue or shed.
			if int(s.queued.Add(1)) > s.cfg.MaxQueue {
				s.queued.Add(-1)
				s.shed(w, r)
				return
			}
			wait := time.NewTimer(s.cfg.QueueWait)
			select {
			case s.sem <- struct{}{}:
				s.queued.Add(-1)
				wait.Stop()
			case <-wait.C:
				s.queued.Add(-1)
				s.shed(w, r)
				return
			case <-r.Context().Done():
				s.queued.Add(-1)
				wait.Stop()
				httpError(w, r, 499, r.Context().Err())
				return
			}
		}
		defer func() { <-s.sem }()
		next(w, r)
	})
}

// shed rejects a request under load.  Retry-After is the queue wait rounded
// up: by then either a slot freed or the client should back off further.
func (s *server) shed(w http.ResponseWriter, r *http.Request) {
	s.metrics.shed.Inc()
	secs := int(s.cfg.QueueWait / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	httpError(w, r, http.StatusTooManyRequests,
		fmt.Errorf("server at capacity (%d in flight, %d queued); retry after %ds",
			s.cfg.MaxInflight, s.cfg.MaxQueue, secs))
}

// decodeRequest decodes the JSON request body into `into` with the
// service's hardening applied: the body is capped at MaxBody bytes
// (overflow is 413, not an OOM), and unknown fields are rejected with a 400
// naming the field, so a typoed "topolgy" fails loudly instead of silently
// running the default topology.  It writes the error response itself and
// reports whether decoding succeeded.
func (s *server) decodeRequest(w http.ResponseWriter, r *http.Request, into any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			httpError(w, r, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds the %d byte limit", maxErr.Limit))
			return false
		}
		httpError(w, r, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return false
	}
	return true
}

// requestContext derives the computation context for one request.
func (s *server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.Timeout > 0 {
		return context.WithTimeout(r.Context(), s.cfg.Timeout)
	}
	return context.WithCancel(r.Context())
}

// checkRequest is the body of POST /v1/check.  The structure is given
// either as a ring size (served from the session cache) or inline in the
// library's text format.
type checkRequest struct {
	// Ring selects the token-ring instance M_ring.
	Ring int `json:"ring,omitempty"`
	// Structure is an inline structure in the text format (alternative to
	// Ring).
	Structure string `json:"structure,omitempty"`
	// Formula is the CTL*/ICTL* formula to check (required).
	Formula string `json:"formula"`
	// Minimize quotients an inline structure before checking.
	Minimize bool `json:"minimize,omitempty"`
	// Evidence requests an explanation of the verdict: the decisive
	// subformula and, where its shape admits one, a witness or
	// counterexample trace.
	Evidence bool `json:"evidence,omitempty"`
}

// checkEvidence is the explanation object of a /v1/check response.
type checkEvidence struct {
	Decisive      string `json:"decisive,omitempty"`
	DecisiveHolds bool   `json:"decisive_holds"`
	Trace         string `json:"trace,omitempty"`
	TraceStates   []int  `json:"trace_states,omitempty"`
	TraceLoop     int    `json:"trace_loop"`
	Note          string `json:"note,omitempty"`
}

type checkResponse struct {
	Holds      bool           `json:"holds"`
	Formula    string         `json:"formula"`
	Structure  string         `json:"structure"`
	States     int            `json:"states"`
	Restricted bool           `json:"restricted"`
	Evidence   *checkEvidence `json:"evidence,omitempty"`
	ElapsedMS  int64          `json:"elapsed_ms"`
}

// explainCheck runs Verifier.Explain and packages the explanation.
func explainCheck(ctx context.Context, v *podc.Verifier, formula podc.Formula) (*checkEvidence, error) {
	ex, err := v.Explain(ctx, formula)
	if err != nil {
		return nil, err
	}
	out := &checkEvidence{DecisiveHolds: ex.DecisiveHolds, Note: ex.Note, TraceLoop: -1}
	if ex.Decisive.IsValid() {
		out.Decisive = ex.Decisive.String()
	}
	if ex.Trace != nil {
		out.Trace = ex.Trace.String()
		out.TraceLoop = ex.Trace.LoopStart
		for _, s := range ex.Trace.States {
			out.TraceStates = append(out.TraceStates, int(s))
		}
	}
	return out, nil
}

func (s *server) handleCheck(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := s.requestContext(r)
	defer cancel()
	var req checkRequest
	if !s.decodeRequest(w, r, &req) {
		return
	}
	formula, err := podc.ParseFormula(req.Formula)
	if err != nil {
		httpError(w, r, http.StatusBadRequest, err)
		return
	}
	start := time.Now()
	resp := checkResponse{Formula: formula.String(), Restricted: formula.IsRestricted()}
	switch {
	case req.Ring > 0 && req.Structure != "":
		httpError(w, r, http.StatusBadRequest, errors.New("give either ring or structure, not both"))
		return
	case req.Ring > 0:
		rg, err := s.session.Ring(ctx, req.Ring)
		if err != nil {
			httpError(w, r, statusFor(err), err)
			return
		}
		holds, err := s.session.CheckRing(ctx, req.Ring, formula)
		if err != nil {
			httpError(w, r, statusFor(err), err)
			return
		}
		resp.Holds = holds
		resp.Structure = rg.Structure().Name()
		resp.States = rg.Structure().NumStates()
		if req.Evidence {
			v, err := s.session.RingVerifier(ctx, req.Ring)
			if err != nil {
				httpError(w, r, statusFor(err), err)
				return
			}
			ev, err := explainCheck(ctx, v, formula)
			if err != nil {
				httpError(w, r, statusFor(err), err)
				return
			}
			resp.Evidence = ev
		}
	case req.Structure != "":
		m, err := podc.ParseStructure(req.Structure)
		if err != nil {
			httpError(w, r, http.StatusBadRequest, err)
			return
		}
		// CTL* semantics needs a total transition relation; a deadlocked
		// structure would get a verdict the logic does not define.
		if err := m.Validate(); err != nil {
			httpError(w, r, http.StatusBadRequest, err)
			return
		}
		opts := []podc.Option{}
		if req.Minimize {
			opts = append(opts, podc.WithMinimize())
		}
		v, err := podc.NewVerifier(ctx, m, opts...)
		if err != nil {
			httpError(w, r, statusFor(err), err)
			return
		}
		holds, err := v.Check(ctx, formula)
		if err != nil {
			httpError(w, r, statusFor(err), err)
			return
		}
		resp.Holds = holds
		resp.Structure = m.Name()
		resp.States = v.Structure().NumStates()
		if req.Evidence {
			ev, err := explainCheck(ctx, v, formula)
			if err != nil {
				httpError(w, r, statusFor(err), err)
				return
			}
			resp.Evidence = ev
		}
	default:
		httpError(w, r, http.StatusBadRequest, errors.New("missing ring size or inline structure"))
		return
	}
	resp.ElapsedMS = time.Since(start).Milliseconds()
	writeJSON(w, r, http.StatusOK, resp)
}

// correspondRequest is the body of POST /v1/correspond.
type correspondRequest struct {
	// Topology selects the family to compare within ("ring", "star",
	// "line", "tree", "torus"); it defaults to the token ring.
	Topology string `json:"topology,omitempty"`
	// Small and Large select the instance sizes to compare (Small defaults
	// to the topology's cutoff, e.g. 3 for the ring).
	Small int `json:"small,omitempty"`
	Large int `json:"large"`
	// Evidence requests, for a failed correspondence, the machine-checked
	// explanation: the failing index pair and the distinguishing formula
	// over its reductions, replayed through the model checker.
	Evidence bool `json:"evidence,omitempty"`
}

// correspondEvidence is the explanation object of a failed /v1/correspond.
type correspondEvidence struct {
	Reason    string         `json:"reason"`
	Pair      podc.IndexPair `json:"pair"`
	Formula   string         `json:"formula,omitempty"`
	Confirmed bool           `json:"confirmed"`
	GameSide  string         `json:"game_side,omitempty"`
	GamePath  []int          `json:"game_path,omitempty"`
	GameLoop  int            `json:"game_loop"`
}

type correspondResponse struct {
	Topology     string              `json:"topology"`
	Small        int                 `json:"small"`
	Large        int                 `json:"large"`
	Corresponds  bool                `json:"corresponds"`
	MaxDegree    int                 `json:"max_degree"`
	IndexPairs   int                 `json:"index_pairs"`
	FailingPairs []podc.IndexPair    `json:"failing_pairs,omitempty"`
	Evidence     *correspondEvidence `json:"evidence,omitempty"`
	ElapsedMS    int64               `json:"elapsed_ms"`
}

// resolveFamilyPair validates the topology/small/large triple shared by
// the correspond and transfer endpoints, applying the topology and cutoff
// defaults.  It writes the error response itself and reports success.
func resolveFamilyPair(w http.ResponseWriter, r *http.Request, topology string, small, large *int) (podc.Topology, bool) {
	if topology == "" {
		topology = "ring"
	}
	topo, ok := podc.TopologyByName(topology)
	if !ok {
		httpError(w, r, http.StatusBadRequest, fmt.Errorf("unknown topology %q (have %s)",
			topology, strings.Join(podc.TopologyNames(), ", ")))
		return podc.Topology{}, false
	}
	if *small == 0 {
		*small = topo.CutoffSize()
	}
	if err := topo.ValidSize(*small); err != nil {
		httpError(w, r, http.StatusBadRequest, fmt.Errorf("small size: %w", err))
		return podc.Topology{}, false
	}
	if err := topo.ValidSize(*large); err != nil {
		httpError(w, r, http.StatusBadRequest, fmt.Errorf("large size: %w", err))
		return podc.Topology{}, false
	}
	if *large < *small {
		httpError(w, r, http.StatusBadRequest, fmt.Errorf("need small <= large, got small=%d large=%d", *small, *large))
		return podc.Topology{}, false
	}
	return topo, true
}

func (s *server) handleCorrespond(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := s.requestContext(r)
	defer cancel()
	var req correspondRequest
	if !s.decodeRequest(w, r, &req) {
		return
	}
	topo, ok := resolveFamilyPair(w, r, req.Topology, &req.Small, &req.Large)
	if !ok {
		return
	}
	start := time.Now()
	corr, err := s.session.Correspondence(ctx, topo, req.Small, req.Large)
	if err != nil {
		httpError(w, r, statusFor(err), err)
		return
	}
	resp := correspondResponse{
		Topology:     topo.Name(),
		Small:        req.Small,
		Large:        req.Large,
		Corresponds:  corr.Corresponds(),
		MaxDegree:    corr.MaxDegree(),
		IndexPairs:   len(corr.IndexRelation()),
		FailingPairs: corr.FailingPairs(),
	}
	if req.Evidence && !corr.Corresponds() {
		ev, err := s.session.CorrespondenceEvidence(ctx, topo, req.Small, req.Large)
		if err != nil {
			httpError(w, r, statusFor(err), err)
			return
		}
		if ev != nil {
			out := &correspondEvidence{
				Reason:    ev.Reason,
				Pair:      ev.Pair,
				Formula:   ev.FormulaText,
				Confirmed: ev.Confirmed,
				GameSide:  ev.GameSide,
				GameLoop:  ev.GameLoop,
			}
			for _, s := range ev.GamePath {
				out.GamePath = append(out.GamePath, int(s))
			}
			resp.Evidence = out
		}
	}
	resp.ElapsedMS = time.Since(start).Milliseconds()
	writeJSON(w, r, http.StatusOK, resp)
}

// transferRequest is the body of POST /v1/transfer.
type transferRequest struct {
	// Topology selects the family (defaults to the token ring).
	Topology string `json:"topology,omitempty"`
	Small    int    `json:"small,omitempty"`
	Large    int    `json:"large"`
}

func (s *server) handleTransfer(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := s.requestContext(r)
	defer cancel()
	var req transferRequest
	if !s.decodeRequest(w, r, &req) {
		return
	}
	topo, ok := resolveFamilyPair(w, r, req.Topology, &req.Small, &req.Large)
	if !ok {
		return
	}
	cert, err := s.session.TransferCertificate(ctx, topo, req.Small, req.Large)
	if err != nil {
		// "do not correspond" is a client-side fact, not a server fault.
		status := statusFor(err)
		if status == http.StatusInternalServerError && strings.Contains(err.Error(), "do not correspond") {
			status = http.StatusUnprocessableEntity
		}
		httpError(w, r, status, err)
		return
	}
	writeJSON(w, r, http.StatusOK, cert)
}

func (s *server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := s.requestContext(r)
	defer cancel()
	id := r.PathValue("id")
	tbl, err := s.session.Experiment(ctx, id)
	if err != nil {
		status := statusFor(err)
		if status == http.StatusInternalServerError && strings.Contains(err.Error(), "unknown experiment") {
			status = http.StatusNotFound
		}
		httpError(w, r, status, err)
		return
	}
	writeJSON(w, r, http.StatusOK, tbl)
}

// storeStatsResponse is the body of GET /v1/store.
type storeStatsResponse struct {
	// Enabled reports whether the service has a working verdict store
	// (-store flag given and the directory usable).
	Enabled bool  `json:"enabled"`
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	// Invalid counts entries that existed but failed an integrity check
	// and were recomputed.
	Invalid int64 `json:"invalid"`
	Writes  int64 `json:"writes"`
}

// handleStoreStats reports the persistent verdict store's counters, so an
// operator can see whether a service restart is answering its battery from
// disk or re-deciding everything.
func (s *server) handleStoreStats(w http.ResponseWriter, r *http.Request) {
	st, ok := s.session.StoreStats()
	writeJSON(w, r, http.StatusOK, storeStatsResponse{
		Enabled: ok,
		Hits:    st.Hits,
		Misses:  st.Misses,
		Invalid: st.Invalid,
		Writes:  st.Writes,
	})
}

// statusFor maps computation errors to HTTP statuses: a cancelled or
// expired request context is the client's doing, and a size beyond the
// explicit-construction limit is an input that can never succeed.
func statusFor(err error) int {
	switch {
	case errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, podc.ErrTooLarge):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

func httpError(w http.ResponseWriter, r *http.Request, status int, err error) {
	writeJSON(w, r, status, map[string]string{"error": err.Error()})
}

// writeJSON encodes v as the response body.  An Encode failure after the
// header is committed cannot be reported to the client, so it is logged
// with the request that produced it — a half-written body should show up
// in the server log, not vanish.
func writeJSON(w http.ResponseWriter, r *http.Request, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("podcserve: %s %s: writing response: %v", r.Method, r.URL.Path, err)
	}
}
