// Command podcserve exposes the library's verification engines as an
// HTTP/JSON service.  All requests are answered from one shared
// podc.Session, so built ring instances, memoised satisfaction sets,
// decided correspondences and finished experiment tables are computed once
// and reused across requests; identical concurrent requests share a single
// computation.  Request contexts are plumbed down into the engines, so a
// client that disconnects (or a deadline that expires) stops the underlying
// computation promptly.
//
// Endpoints:
//
//	POST /v1/check             model check a formula (ring size or inline structure)
//	POST /v1/correspond        decide the indexed ring correspondence M_small ~ M_large
//	POST /v1/transfer          build the JSON transfer certificate for (small, large)
//	GET  /v1/experiments/{id}  run (once) and return an experiment table, e.g. E6
//	GET  /v1/sweep             stream a topology sweep as server-sent events
//	GET  /v1/store             persistent verdict store counters (hits/misses/invalid/writes)
//	GET  /metrics              Prometheus text exposition of every layer's counters
//	GET  /healthz              liveness probe
//
// Usage:
//
//	podcserve -addr :8080 -workers 4
//	podcserve -addr :8080 -pprof localhost:6060      # also serve net/http/pprof
//	podcserve -addr :8080 -metrics localhost:9090    # also serve /metrics on its own listener
//
// Request bodies are capped (-max-body, 1 MiB default; overflow is 413),
// and the computing endpoints sit behind admission control: at most
// -max-inflight requests compute at once, at most -max-queue wait for a
// slot for up to -queue-wait, and everything beyond that is shed with 429
// and a Retry-After hint.  SIGINT/SIGTERM trigger a graceful shutdown:
// the listener closes, in-flight requests get -drain to finish, and a
// clean drain exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/pkg/podc"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker pool cap for correspondences and experiments (0 = one per CPU)")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-request computation deadline (0 = none)")
	maxBody := flag.Int64("max-body", 1<<20, "request body cap in bytes (larger bodies are rejected with 413)")
	maxInflight := flag.Int("max-inflight", 64, "admission control: computing requests allowed at once")
	maxQueue := flag.Int("max-queue", 256, "admission control: requests allowed to wait for a slot")
	queueWait := flag.Duration("queue-wait", 5*time.Second, "admission control: how long a queued request waits before 429")
	drain := flag.Duration("drain", 15*time.Second, "graceful shutdown: how long in-flight requests get to finish")
	pprofAddr := flag.String("pprof", "", "serve /debug/pprof on this address (empty = disabled)")
	metricsAddr := flag.String("metrics", "", "also serve /metrics on this address (empty = service address only)")
	storeDir := flag.String("store", "", "persistent verdict store directory: correspondences, certificates and evidence survive restarts and are replayed (revalidated) instead of re-decided")
	flag.Parse()

	if *pprofAddr != "" {
		//lint:goleak debug pprof listener is deliberately process-lifetime
		go func() {
			mux := http.NewServeMux()
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			log.Printf("podcserve: pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, mux); err != nil {
				log.Printf("podcserve: pprof server: %v", err)
			}
		}()
	}

	opts := []podc.Option{podc.WithWorkers(*workers)}
	if *storeDir != "" {
		opts = append(opts, podc.WithStore(*storeDir))
	}
	session := podc.NewSession(opts...)
	svc := newServer(session, serverConfig{
		Timeout:     *timeout,
		MaxBody:     *maxBody,
		MaxInflight: *maxInflight,
		MaxQueue:    *maxQueue,
		QueueWait:   *queueWait,
	})

	if *metricsAddr != "" {
		// A scrape endpoint on its own listener, so operators can keep the
		// service address private while exposing metrics to a collector.
		//lint:goleak metrics listener is deliberately process-lifetime
		go func() {
			mux := http.NewServeMux()
			mux.Handle("GET /metrics", svc.metrics.registry.Handler())
			log.Printf("podcserve: metrics listening on %s", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				log.Printf("podcserve: metrics server: %v", err)
			}
		}()
	}

	srv := &http.Server{
		Handler:           svc.handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "podcserve:", err)
		os.Exit(1)
	}
	log.Printf("podcserve: listening on %s", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := serveUntilShutdown(ctx, srv, ln, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "podcserve:", err)
		os.Exit(1)
	}
	log.Printf("podcserve: drained, exiting")
}

// serveUntilShutdown serves on ln until ctx is cancelled (SIGINT/SIGTERM in
// production), then shuts down gracefully: the listener closes immediately
// so no new work is admitted, and in-flight requests get the drain window
// to finish.  A clean drain returns nil; an overrun force-closes the
// remaining connections and returns the deadline error.
func serveUntilShutdown(ctx context.Context, srv *http.Server, ln net.Listener, drain time.Duration) error {
	errc := make(chan error, 1)
	//lint:goleak Serve returns once the listener closes (Shutdown/Close) and the send on the buffered errc is reaped below
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	select {
	case err := <-errc:
		// Serve failed before any shutdown was requested.
		return err
	case <-ctx.Done():
	}

	log.Printf("podcserve: shutdown requested, draining for up to %s", drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		srv.Close()
		<-errc
		return fmt.Errorf("drain deadline exceeded after %s: %w", drain, err)
	}
	<-errc
	return nil
}
