// Command podcserve exposes the library's verification engines as an
// HTTP/JSON service.  All requests are answered from one shared
// podc.Session, so built ring instances, memoised satisfaction sets,
// decided correspondences and finished experiment tables are computed once
// and reused across requests; identical concurrent requests share a single
// computation.  Request contexts are plumbed down into the engines, so a
// client that disconnects (or a deadline that expires) stops the underlying
// computation promptly.
//
// Endpoints:
//
//	POST /v1/check             model check a formula (ring size or inline structure)
//	POST /v1/correspond        decide the indexed ring correspondence M_small ~ M_large
//	POST /v1/transfer          build the JSON transfer certificate for (small, large)
//	GET  /v1/experiments/{id}  run (once) and return an experiment table, e.g. E6
//	GET  /v1/store             persistent verdict store counters (hits/misses/invalid/writes)
//	GET  /healthz              liveness probe
//
// Usage:
//
//	podcserve -addr :8080 -workers 4
//	podcserve -addr :8080 -pprof localhost:6060   # also serve net/http/pprof
//
// The -pprof flag (off by default) starts a second listener serving the
// standard /debug/pprof/ handlers on its own mux, so production profiles can
// be captured without exposing the profiler on the service address or
// editing code.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"repro/pkg/podc"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker pool cap for correspondences and experiments (0 = one per CPU)")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-request computation deadline (0 = none)")
	pprofAddr := flag.String("pprof", "", "serve /debug/pprof on this address (empty = disabled)")
	storeDir := flag.String("store", "", "persistent verdict store directory: correspondences, certificates and evidence survive restarts and are replayed (revalidated) instead of re-decided")
	flag.Parse()

	if *pprofAddr != "" {
		//lint:goleak debug pprof listener is deliberately process-lifetime
		go func() {
			mux := http.NewServeMux()
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			log.Printf("podcserve: pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, mux); err != nil {
				log.Printf("podcserve: pprof server: %v", err)
			}
		}()
	}

	opts := []podc.Option{podc.WithWorkers(*workers)}
	if *storeDir != "" {
		opts = append(opts, podc.WithStore(*storeDir))
	}
	session := podc.NewSession(opts...)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           newHandler(session, *timeout),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("podcserve: listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "podcserve:", err)
		os.Exit(1)
	}
}
