package main

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/loadgen"
	"repro/pkg/podc"
)

// TestLoadBatteryVerdictsAreByteIdentical is the acceptance check behind
// cmd/podcload: every battery response from the real handler must
// canonicalize to exactly the bytes the library computes, under concurrent
// replay.  The oracle session is separate from the server's, so agreement
// is a genuine differential result, not cache sharing.
func TestLoadBatteryVerdictsAreByteIdentical(t *testing.T) {
	ctx := context.Background()
	oracle := podc.NewSession(podc.WithWorkers(2))
	battery, err := loadgen.Battery(ctx, oracle)
	if err != nil {
		t.Fatal(err)
	}

	server := podc.NewSession(podc.WithWorkers(2))
	ts := httptest.NewServer(newHandler(server, serverConfig{Timeout: time.Minute}))
	t.Cleanup(ts.Close)

	res, err := loadgen.Run(ctx, battery, loadgen.Options{
		BaseURL:     ts.URL,
		Client:      ts.Client(),
		Concurrency: 4,
		Requests:    3 * len(battery),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Errorf("%d errors; first: %s", res.Errors, res.FirstError)
	}
	if res.Mismatches != 0 {
		t.Errorf("%d verdict mismatches; first: %s\n got: %s\nwant: %s",
			res.Mismatches, res.FirstMismatch.Name, res.FirstMismatch.Got, res.FirstMismatch.Want)
	}
}
