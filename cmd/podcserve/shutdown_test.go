package main

import (
	"context"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"testing"
	"time"
)

// slowHandler blocks inside the handler until release is closed, so tests
// can hold a request in flight across a shutdown.
func slowHandler(entered chan<- struct{}, release <-chan struct{}) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "slow ok\n")
	})
}

// TestGracefulShutdownDrainsInflight sends the process a real SIGTERM while
// a request is in flight: serveUntilShutdown must stop accepting, let the
// slow request finish inside the drain window, and return nil (the clean
// exit-0 path of main).
func TestGracefulShutdownDrainsInflight(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: slowHandler(entered, release)}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()
	serveDone := make(chan error, 1)
	go func() { serveDone <- serveUntilShutdown(ctx, srv, ln, 10*time.Second) }()

	reqDone := make(chan error, 1)
	var status int
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/")
		if err == nil {
			status = resp.StatusCode
			io.ReadAll(resp.Body)
			resp.Body.Close()
		}
		reqDone <- err
	}()
	<-entered

	// The request is inside the handler; deliver the production signal.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// Shutdown must wait for the in-flight request, not race past it.
	select {
	case err := <-serveDone:
		t.Fatalf("serveUntilShutdown returned (%v) while a request was still in flight", err)
	case <-time.After(200 * time.Millisecond):
	}

	close(release)
	if err := <-reqDone; err != nil {
		t.Fatalf("in-flight request failed across shutdown: %v", err)
	}
	if status != http.StatusOK {
		t.Fatalf("in-flight request status %d, want 200", status)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("clean drain must return nil, got %v", err)
	}

	// The listener is closed: new connections must be refused.
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second); err == nil {
		t.Error("listener still accepting after shutdown")
	}
}

// TestShutdownDrainDeadlineExceeded holds a request past a tiny drain
// window: serveUntilShutdown must force-close and return the deadline
// error instead of hanging forever on a stuck handler.
func TestShutdownDrainDeadlineExceeded(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: slowHandler(entered, release)}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveDone := make(chan error, 1)
	go func() { serveDone <- serveUntilShutdown(ctx, srv, ln, 50*time.Millisecond) }()

	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered

	cancel()
	select {
	case err := <-serveDone:
		if err == nil {
			t.Fatal("drain overrun must return an error, got nil")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serveUntilShutdown hung past the drain deadline")
	}
}
