// Command bisimcheck decides whether two Kripke structures (in the library's
// text format) correspond in the sense of Browne, Clarke and Grumberg, i.e.
// whether they satisfy exactly the same CTL* formulas without the nexttime
// operator.  With -index-pairs it checks the indexed correspondence of
// Section 4 instead.
//
// Usage:
//
//	bisimcheck -a left.km -b right.km
//	bisimcheck -a small.km -b large.km -index-pairs "1:1,2:2,2:3" -one t
//
// Exit status 0 when the structures correspond, 1 when they do not, 2 on
// errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bisim"
	"repro/internal/kripke"
)

func main() {
	os.Exit(run())
}

func run() int {
	pathA := flag.String("a", "", "path to the first structure (required)")
	pathB := flag.String("b", "", "path to the second structure (required)")
	indexPairs := flag.String("index-pairs", "", "comma separated i:i' pairs for indexed correspondence (e.g. \"1:1,2:2,2:3\")")
	onesFlag := flag.String("one", "", "comma separated proposition names whose 'exactly one' atoms are part of AP")
	reachableOnly := flag.Bool("reachable-only", true, "require totality only over reachable states")
	showPairs := flag.Bool("pairs", false, "print the maximal correspondence relation with degrees")
	flag.Parse()

	if *pathA == "" || *pathB == "" {
		fmt.Fprintln(os.Stderr, "usage: bisimcheck -a FILE -b FILE [-index-pairs ...] [-one props]")
		flag.PrintDefaults()
		return 2
	}
	a, err := loadStructure(*pathA)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bisimcheck:", err)
		return 2
	}
	b, err := loadStructure(*pathB)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bisimcheck:", err)
		return 2
	}
	opts := bisim.Options{ReachableOnly: *reachableOnly}
	if *onesFlag != "" {
		opts.OneProps = strings.Split(*onesFlag, ",")
	}
	fmt.Println(a.ComputeStats())
	fmt.Println(b.ComputeStats())

	if *indexPairs != "" {
		in, err := parseIndexPairs(*indexPairs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bisimcheck:", err)
			return 2
		}
		res, err := bisim.IndexedCompute(a, b, in, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bisimcheck:", err)
			return 2
		}
		for pair, r := range res.Pairs {
			fmt.Printf("  (%d,%d): initial related=%v total=%v/%v max degree=%d\n",
				pair.I, pair.I2, r.InitialRelated, r.TotalLeft, r.TotalRight, r.Relation.MaxDegree())
		}
		if res.Corresponds() {
			fmt.Println("RESULT: the structures indexed-correspond; closed restricted ICTL* formulas transfer")
			return 0
		}
		fmt.Printf("RESULT: the structures do NOT indexed-correspond (failing pairs %v)\n", res.FailingPairs())
		return 1
	}

	res, err := bisim.Compute(a, b, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bisimcheck:", err)
		return 2
	}
	fmt.Printf("pairs=%d initial related=%v total=%v/%v max degree=%d\n",
		res.Relation.Size(), res.InitialRelated, res.TotalLeft, res.TotalRight, res.Relation.MaxDegree())
	if *showPairs {
		for _, p := range res.Relation.Pairs() {
			fmt.Printf("  %d ~ %d (degree %d)\n", p.S, p.T, p.Degree)
		}
	}
	if res.Corresponds() {
		fmt.Println("RESULT: the structures correspond; they satisfy the same CTL* formulas without nexttime")
		return 0
	}
	fmt.Println("RESULT: the structures do NOT correspond")
	return 1
}

func loadStructure(path string) (*kripke.Structure, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return kripke.DecodeText(f)
}

func parseIndexPairs(s string) ([]bisim.IndexPair, error) {
	var out []bisim.IndexPair
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		halves := strings.Split(part, ":")
		if len(halves) != 2 {
			return nil, fmt.Errorf("bad index pair %q (want i:i')", part)
		}
		i, err := strconv.Atoi(strings.TrimSpace(halves[0]))
		if err != nil {
			return nil, fmt.Errorf("bad index %q", halves[0])
		}
		j, err := strconv.Atoi(strings.TrimSpace(halves[1]))
		if err != nil {
			return nil, fmt.Errorf("bad index %q", halves[1])
		}
		out = append(out, bisim.IndexPair{I: i, I2: j})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no index pairs given")
	}
	return out, nil
}
