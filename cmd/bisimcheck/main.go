// Command bisimcheck decides whether two Kripke structures (in the library's
// text format) correspond in the sense of Browne, Clarke and Grumberg, i.e.
// whether they satisfy exactly the same CTL* formulas without the nexttime
// operator.  With -index-pairs it checks the indexed correspondence of
// Section 4 instead.
//
// Usage:
//
//	bisimcheck -a left.km -b right.km
//	bisimcheck -a small.km -b large.km -index-pairs "1:1,2:2,2:3" -one t
//	bisimcheck -a left.km -b right.km -json          # machine-readable verdict
//	bisimcheck -a small.km -b large.km -workers 4 -index-pairs "1:1,2:2"
//
// Exit status 0 when the structures correspond, 1 when they do not, 2 on
// errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/pkg/podc"
)

func main() {
	os.Exit(run())
}

// jsonVerdict is the -json output shape, shared by the plain and indexed
// modes.
type jsonVerdict struct {
	Corresponds  bool             `json:"corresponds"`
	Indexed      bool             `json:"indexed"`
	MaxDegree    int              `json:"max_degree"`
	Pairs        int              `json:"pairs,omitempty"`
	FailingPairs []podc.IndexPair `json:"failing_pairs,omitempty"`
	Relation     json.RawMessage  `json:"relation,omitempty"`
}

func run() int {
	pathA := flag.String("a", "", "path to the first structure (required)")
	pathB := flag.String("b", "", "path to the second structure (required)")
	indexPairs := flag.String("index-pairs", "", "comma separated i:i' pairs for indexed correspondence (e.g. \"1:1,2:2,2:3\")")
	onesFlag := flag.String("one", "", "comma separated proposition names whose 'exactly one' atoms are part of AP")
	reachableOnly := flag.Bool("reachable-only", true, "require totality only over reachable states")
	showPairs := flag.Bool("pairs", false, "print the maximal correspondence relation with degrees")
	workers := flag.Int("workers", 0, "worker pool size for indexed correspondences (0 = one per CPU)")
	jsonOut := flag.Bool("json", false, "emit the verdict as JSON on stdout")
	flag.Parse()
	ctx := context.Background()

	if *pathA == "" || *pathB == "" {
		fmt.Fprintln(os.Stderr, "usage: bisimcheck -a FILE -b FILE [-index-pairs ...] [-one props] [-workers n] [-json]")
		flag.PrintDefaults()
		return 2
	}
	a, err := loadStructure(*pathA)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bisimcheck:", err)
		return 2
	}
	b, err := loadStructure(*pathB)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bisimcheck:", err)
		return 2
	}
	opts := []podc.Option{podc.WithWorkers(*workers)}
	if *reachableOnly {
		opts = append(opts, podc.WithReachableOnly())
	}
	if *onesFlag != "" {
		opts = append(opts, podc.WithAtoms(strings.Split(*onesFlag, ",")...))
	}
	if !*jsonOut {
		fmt.Println(a.Summary())
		fmt.Println(b.Summary())
	}

	if *indexPairs != "" {
		in, err := parseIndexPairs(*indexPairs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bisimcheck:", err)
			return 2
		}
		res, err := podc.IndexedCorrespond(ctx, a, b, in, opts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bisimcheck:", err)
			return 2
		}
		if *jsonOut {
			emitJSON(jsonVerdict{
				Corresponds:  res.Corresponds(),
				Indexed:      true,
				MaxDegree:    res.MaxDegree(),
				Pairs:        len(res.IndexRelation()),
				FailingPairs: res.FailingPairs(),
			})
			return exitStatus(res.Corresponds())
		}
		for _, pair := range res.IndexRelation() {
			if pr, ok := res.PairResult(pair); ok {
				initial := pr.InitialsRelated()
				tl, tr := pr.Total()
				fmt.Printf("  (%d,%d): initial related=%v total=%v/%v max degree=%d\n",
					pair.I, pair.I2, initial, tl, tr, pr.MaxDegree())
			}
		}
		if res.Corresponds() {
			fmt.Println("RESULT: the structures indexed-correspond; closed restricted ICTL* formulas transfer")
			return 0
		}
		fmt.Printf("RESULT: the structures do NOT indexed-correspond (failing pairs %v)\n", res.FailingPairs())
		return 1
	}

	res, err := podc.Correspond(ctx, a, b, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bisimcheck:", err)
		return 2
	}
	if *jsonOut {
		v := jsonVerdict{Corresponds: res.Corresponds(), MaxDegree: res.MaxDegree(), Pairs: res.Size()}
		if *showPairs {
			if rel, err := json.Marshal(res); err == nil {
				v.Relation = rel
			}
		}
		emitJSON(v)
		return exitStatus(res.Corresponds())
	}
	initial := res.InitialsRelated()
	tl, tr := res.Total()
	fmt.Printf("pairs=%d initial related=%v total=%v/%v max degree=%d\n",
		res.Size(), initial, tl, tr, res.MaxDegree())
	if *showPairs {
		for _, p := range res.Pairs() {
			fmt.Printf("  %d ~ %d (degree %d)\n", p.Left, p.Right, p.Degree)
		}
	}
	if res.Corresponds() {
		fmt.Println("RESULT: the structures correspond; they satisfy the same CTL* formulas without nexttime")
		return 0
	}
	fmt.Println("RESULT: the structures do NOT correspond")
	return 1
}

func exitStatus(corresponds bool) int {
	if corresponds {
		return 0
	}
	return 1
}

func emitJSON(v jsonVerdict) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintln(os.Stderr, "bisimcheck:", err)
	}
}

func loadStructure(path string) (*podc.Structure, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return podc.ReadStructure(f)
}

func parseIndexPairs(s string) ([]podc.IndexPair, error) {
	var out []podc.IndexPair
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		halves := strings.Split(part, ":")
		if len(halves) != 2 {
			return nil, fmt.Errorf("bad index pair %q (want i:i')", part)
		}
		i, err := strconv.Atoi(strings.TrimSpace(halves[0]))
		if err != nil {
			return nil, fmt.Errorf("bad index %q", halves[0])
		}
		j, err := strconv.Atoi(strings.TrimSpace(halves[1]))
		if err != nil {
			return nil, fmt.Errorf("bad index %q", halves[1])
		}
		out = append(out, podc.IndexPair{I: i, I2: j})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no index pairs given")
	}
	return out, nil
}
