// Command ictlcheck model checks CTL*/ICTL* formulas against a Kripke
// structure given in the library's text format.
//
// Usage:
//
//	ictlcheck -model structure.km -formula "forall i . AG(d[i] -> AF c[i])"
//	ictlcheck -model structure.km -formulas specs.txt      # one formula per line
//	ictlcheck -model structure.km -formula "AG p" -witness # print a witness/counterexample
//	ictlcheck -model structure.km -formula "AG p" -minimize # check on the verified bisimulation quotient
//
// The exit status is 0 when every formula holds, 1 when at least one fails,
// and 2 on usage or input errors.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/pkg/podc"
)

func main() {
	os.Exit(run())
}

func run() int {
	modelPath := flag.String("model", "", "path to the Kripke structure in text format (required)")
	formulaText := flag.String("formula", "", "a single formula to check")
	formulasPath := flag.String("formulas", "", "path to a file with one formula per line ('#' comments allowed)")
	witness := flag.Bool("witness", false, "print a witness or counterexample for CTL-shaped formulas")
	explain := flag.Bool("explain", false, "explain each verdict: decisive subformula plus its witness or counterexample trace")
	checkRestricted := flag.Bool("restricted", false, "also report whether each formula lies in restricted ICTL*")
	makeTotal := flag.Bool("make-total", false, "add self loops to deadlock states before checking")
	minimize := flag.Bool("minimize", false, "quotient the structure by its maximal self-correspondence before checking (CTL*-X truth is preserved; X and -witness refer to the quotient)")
	flag.Parse()
	ctx := context.Background()

	if *modelPath == "" || (*formulaText == "" && *formulasPath == "") {
		fmt.Fprintln(os.Stderr, "usage: ictlcheck -model FILE (-formula F | -formulas FILE) [-witness] [-restricted]")
		flag.PrintDefaults()
		return 2
	}

	f, err := os.Open(*modelPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ictlcheck:", err)
		return 2
	}
	defer f.Close()
	m, err := podc.ReadStructure(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ictlcheck:", err)
		return 2
	}
	if *makeTotal {
		m = m.MakeTotal()
	}
	if err := m.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "ictlcheck: warning:", err)
	}
	fmt.Println(m.Summary())

	var formulas []string
	if *formulaText != "" {
		formulas = append(formulas, *formulaText)
	}
	if *formulasPath != "" {
		fromFile, err := readFormulas(*formulasPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ictlcheck:", err)
			return 2
		}
		formulas = append(formulas, fromFile...)
	}

	var opts []podc.Option
	if *minimize {
		opts = append(opts, podc.WithMinimize())
	}
	verifier, err := podc.NewVerifier(ctx, m, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ictlcheck:", err)
		return 2
	}
	if *minimize {
		if verifier.Minimized() {
			fmt.Printf("minimize: %d states -> %d quotient states (quotient verified to correspond)\n",
				m.NumStates(), verifier.Structure().NumStates())
		} else {
			fmt.Println("minimize: checking the original structure (quotient refused; see the podc.WithMinimize docs)")
		}
	}
	allHold := true
	for _, text := range formulas {
		formula, err := podc.ParseFormula(text)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ictlcheck: %q: %v\n", text, err)
			return 2
		}
		holds, err := verifier.Check(ctx, formula)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ictlcheck: %q: %v\n", text, err)
			return 2
		}
		status := "holds"
		if !holds {
			status = "FAILS"
			allHold = false
		}
		fmt.Printf("%-6s  %s\n", status, text)
		if *checkRestricted {
			if issues := formula.RestrictionIssues(); len(issues) == 0 {
				fmt.Println("        in restricted ICTL* (transferable by the correspondence theorem)")
			} else {
				for _, issue := range issues {
					fmt.Println("        outside restricted ICTL*:", issue)
				}
			}
		}
		if *witness {
			printDiagnostic(ctx, verifier, formula, holds)
		}
		if *explain {
			printExplanation(ctx, verifier, formula)
		}
	}
	if allHold {
		return 0
	}
	return 1
}

func printDiagnostic(ctx context.Context, verifier *podc.Verifier, formula podc.Formula, holds bool) {
	if holds {
		if trace, err := verifier.Witness(ctx, formula); err == nil {
			fmt.Println("        witness:", trace)
		}
		return
	}
	if trace, err := verifier.Counterexample(ctx, formula); err == nil {
		fmt.Println("        counterexample:", trace)
	}
}

func printExplanation(ctx context.Context, verifier *podc.Verifier, formula podc.Formula) {
	ex, err := verifier.Explain(ctx, formula)
	if err != nil {
		fmt.Println("        explain:", err)
		return
	}
	if ex.Decisive.IsValid() {
		fmt.Printf("        decisive: %s (holds: %v)\n", ex.Decisive, ex.DecisiveHolds)
	}
	if ex.Trace != nil {
		fmt.Println("        trace:", ex.Trace)
	}
	if ex.Note != "" {
		fmt.Println("        note:", ex.Note)
	}
}

func readFormulas(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []string
	scanner := bufio.NewScanner(f)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	return out, scanner.Err()
}
