// Command experiments regenerates every table and figure of the
// reproduction (the data recorded in EXPERIMENTS.md) on a worker pool, and
// runs ring-size sweeps through the partition-refinement correspondence
// engine.
//
// Usage:
//
//	experiments                  # run E1..E9 on the pool, print in order
//	experiments -markdown        # print the tables as markdown (EXPERIMENTS.md form)
//	experiments -only E6         # run a single experiment by identifier
//	experiments -stream          # print each table the moment it finishes
//	experiments -workers 2       # cap the worker pool
//	experiments -sweep 4,6,8,10  # decide the cutoff correspondence per size, streaming verdicts
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

func main() {
	markdown := flag.Bool("markdown", false, "render the tables as markdown")
	only := flag.String("only", "", "run only the experiment with this identifier (e.g. E1, E6, E7)")
	stream := flag.Bool("stream", false, "print each table as soon as its experiment finishes (completion order)")
	workers := flag.Int("workers", 0, "worker pool size (0 = one per CPU)")
	sweep := flag.String("sweep", "", "comma separated ring sizes: decide the cutoff correspondence for each, streaming results")
	flag.Parse()

	runner := experiments.Runner{Workers: *workers}
	if *sweep != "" {
		os.Exit(runSweep(runner, *sweep, *markdown))
	}

	render := func(tbl *experiments.Table) {
		if *markdown {
			fmt.Println(tbl.Markdown())
		} else {
			fmt.Println(tbl.Text())
		}
	}

	jobs := experiments.StandardJobs()
	if *only != "" {
		var filtered []experiments.Job
		for _, j := range jobs {
			if j.ID == *only {
				filtered = append(filtered, j)
			}
		}
		if len(filtered) == 0 {
			fmt.Fprintf(os.Stderr, "experiments: no experiment named %q\n", *only)
			os.Exit(2)
		}
		jobs = filtered
	}

	if *stream {
		failed := false
		for o := range runner.Stream(jobs) {
			if o.Err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", o.ID, o.Err)
				failed = true
				continue
			}
			fmt.Printf("# %s finished in %s\n", o.ID, o.Elapsed.Round(1000))
			render(o.Table)
		}
		if failed {
			os.Exit(2)
		}
		return
	}

	tables, err := runner.Collect(jobs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	for _, tbl := range tables {
		render(tbl)
	}
}

// runSweep decides the cutoff correspondence for every requested ring size,
// printing each verdict as it streams in and a sorted summary table at the
// end.
func runSweep(runner experiments.Runner, spec string, markdown bool) int {
	var sizes []int
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := strconv.Atoi(part)
		if err != nil || r < 2 {
			fmt.Fprintf(os.Stderr, "experiments: bad ring size %q\n", part)
			return 2
		}
		sizes = append(sizes, r)
	}
	if len(sizes) == 0 {
		fmt.Fprintln(os.Stderr, "experiments: -sweep needs at least one ring size")
		return 2
	}
	failed := false
	var rows []experiments.SweepRow
	for row := range runner.CorrespondenceSweep(sizes) {
		if row.Err != nil {
			fmt.Fprintf(os.Stderr, "experiments: r=%d: %v\n", row.R, row.Err)
			failed = true
			continue
		}
		fmt.Printf("r=%-4d states=%-8d corresponds=%-5v max degree=%-3d build=%-12s decide=%s\n",
			row.R, row.States, row.Corresponds, row.MaxDegree, row.BuildElapsed.Round(1000), row.DecideElapsed.Round(1000))
		rows = append(rows, row)
	}
	if failed {
		return 2
	}
	tbl := experiments.SweepRowsTable(rows)
	fmt.Println()
	if markdown {
		fmt.Println(tbl.Markdown())
	} else {
		fmt.Println(tbl.Text())
	}
	return 0
}
