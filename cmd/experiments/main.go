// Command experiments regenerates every table and figure of the
// reproduction (the data recorded in EXPERIMENTS.md).
//
// Usage:
//
//	experiments            # print all tables as plain text
//	experiments -markdown  # print all tables as markdown (EXPERIMENTS.md form)
//	experiments -only E6   # run a single experiment by identifier
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	markdown := flag.Bool("markdown", false, "render the tables as markdown")
	only := flag.String("only", "", "run only the experiment with this identifier (e.g. E1, E6, E7)")
	flag.Parse()

	tables, err := experiments.All()
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	printed := 0
	for _, tbl := range tables {
		if *only != "" && tbl.ID != *only {
			continue
		}
		if *markdown {
			fmt.Println(tbl.Markdown())
		} else {
			fmt.Println(tbl.Text())
		}
		printed++
	}
	if printed == 0 {
		fmt.Fprintf(os.Stderr, "experiments: no experiment named %q\n", *only)
		os.Exit(2)
	}
}
