// Command experiments regenerates every table and figure of the
// reproduction (the data recorded in EXPERIMENTS.md) on a worker pool, and
// runs ring-size sweeps through the partition-refinement correspondence
// engine.  It is a thin front end over podc.Session, the same streaming
// machinery the HTTP service serves.
//
// Usage:
//
//	experiments                  # run E1..E10 on the pool, print in order
//	experiments -markdown        # print the tables as markdown (EXPERIMENTS.md form)
//	experiments -json            # print the tables as JSON (the HTTP service's shape)
//	experiments -only E6         # run a single experiment by identifier
//	experiments -stream          # print each table the moment it finishes
//	experiments -workers 2       # cap the worker pool
//	experiments -sweep 4,6,8,10  # decide each topology's cutoff correspondence per size
//	experiments -sweep default   # the default battery: sizes 4..20, up to the 21M-state r=20 ring
//	experiments -sweep 6,8 -topologies star,torus   # sweep selected topologies only
//	experiments -sweep default -build-workers 4     # cap the construction pool
//	experiments -sweep default -warm                # seed each size from the previous one
//	experiments -sweep default -store .verdicts     # replay/record verdicts across runs
//	experiments -sweep default -cpuprofile sweep.prof   # profile the run
//
// A sweep covers every built-in topology (ring, star, line, tree, torus,
// torus3) by default; sizes a topology cannot instantiate (e.g. odd sizes
// of the 2-row torus) are skipped for that topology with a note.  Instances
// are constructed by the parallel packed-BFS engine (byte-identical to the
// sequential builds); sizes whose spaces exceed the decide budget come back
// as build-only rows carrying the raw-space counts, the construction
// throughput and the symmetry quotient's orbit count.
//
// The -cpuprofile and -memprofile flags write pprof profiles of whatever
// workload was selected, so perf work on the engines needs no code edits.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/pkg/podc"
)

func main() { os.Exit(run()) }

// run is main behind an exit code, so the profile-flushing defers execute
// before the process exits.
func run() int {
	markdown := flag.Bool("markdown", false, "render the tables as markdown")
	jsonOut := flag.Bool("json", false, "render the tables as JSON")
	only := flag.String("only", "", "run only the experiment with this identifier (e.g. E1, E6, E7)")
	stream := flag.Bool("stream", false, "print each table as soon as its experiment finishes (completion order)")
	workers := flag.Int("workers", 0, "worker pool size for experiment jobs and index-pair pools; >1 also switches decisions onto the parallel refinement and word-at-a-time checking engines (0 = one per CPU)")
	buildWorkers := flag.Int("build-workers", 0, "parallel packed-BFS construction pool size for sweeps and instance builds (0 = one per CPU)")
	sweep := flag.String("sweep", "", `comma separated sizes ("default" for the standard battery): decide each topology's cutoff correspondence for each size, streaming results`)
	topologies := flag.String("topologies", "all", `comma separated topologies to sweep ("all" or a subset of `+strings.Join(podc.TopologyNames(), ",")+`)`)
	storeDir := flag.String("store", "", "persistent verdict store directory: replay already-decided correspondences from it and record fresh ones (created if needed)")
	warm := flag.Bool("warm", false, "warm-started sweeps: decide sizes in ascending order, seeding each refinement with the previous size's partition")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile of the run to this file")
	flag.Parse()
	ctx := context.Background()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialise final live-heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
		}()
	}

	sessionOpts := []podc.Option{podc.WithWorkers(*workers), podc.WithParallelBuild(*buildWorkers)}
	if *storeDir != "" {
		sessionOpts = append(sessionOpts, podc.WithStore(*storeDir))
	}
	if *warm {
		sessionOpts = append(sessionOpts, podc.WithWarmSweep())
	}
	session := podc.NewSession(sessionOpts...)
	render := func(tbl *podc.Table) {
		switch {
		case *jsonOut:
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(tbl); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
		case *markdown:
			fmt.Println(tbl.Markdown())
		default:
			fmt.Println(tbl.Text())
		}
	}

	if *sweep != "" {
		return runSweep(ctx, session, *sweep, *topologies, *jsonOut, render)
	}

	var ids []string
	if *only != "" {
		ids = []string{*only}
	}

	if *stream {
		failed := false
		for o := range session.Experiments(ctx, ids) {
			if o.Err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", o.ID, o.Err)
				failed = true
				continue
			}
			if !*jsonOut {
				fmt.Printf("# %s finished in %s\n", o.ID, o.Elapsed.Round(1000))
			}
			render(o.Table)
		}
		if failed {
			return 2
		}
		return 0
	}

	// Collect in battery order: stream everything, then print sorted.
	tables := map[string]*podc.Table{}
	for o := range session.Experiments(ctx, ids) {
		if o.Err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", o.ID, o.Err)
			return 2
		}
		tables[o.ID] = o.Table
	}
	order := ids
	if len(order) == 0 {
		order = podc.ExperimentIDs()
	}
	for _, id := range order {
		if tbl, ok := tables[id]; ok {
			render(tbl)
		}
	}
	return 0
}

// runSweep decides the cutoff correspondence of every selected topology
// for every requested size, printing each verdict as it streams in and a
// combined summary table at the end.
func runSweep(ctx context.Context, session *podc.Session, spec, topoSpec string, jsonOut bool, render func(*podc.Table)) int {
	var sizes []int
	if strings.TrimSpace(spec) == "default" {
		sizes = podc.DefaultSweepSizes()
		spec = ""
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := strconv.Atoi(part)
		if err != nil || r < 2 {
			fmt.Fprintf(os.Stderr, "experiments: bad size %q\n", part)
			return 2
		}
		sizes = append(sizes, r)
	}
	if len(sizes) == 0 {
		fmt.Fprintln(os.Stderr, "experiments: -sweep needs at least one size")
		return 2
	}
	var topos []podc.Topology
	if strings.TrimSpace(topoSpec) == "all" || strings.TrimSpace(topoSpec) == "" {
		topos = podc.Topologies()
	} else {
		for _, name := range strings.Split(topoSpec, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			topo, ok := podc.TopologyByName(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown topology %q (have %s)\n",
					name, strings.Join(podc.TopologyNames(), ", "))
				return 2
			}
			topos = append(topos, topo)
		}
	}
	failed := false
	enc := json.NewEncoder(os.Stdout)
	var rows []podc.SweepResult
	for _, topo := range topos {
		var valid []int
		for _, n := range sizes {
			if err := topo.ValidSize(n); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s: skipping n=%d: %v\n", topo.Name(), n, err)
				continue
			}
			valid = append(valid, n)
		}
		if len(valid) == 0 {
			fmt.Fprintf(os.Stderr, "experiments: %s: no valid sizes in the sweep\n", topo.Name())
			continue
		}
		for row := range session.SweepTopology(ctx, topo, valid) {
			if row.Err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s n=%d: %v\n", row.Topology, row.R, row.Err)
				failed = true
				continue
			}
			rows = append(rows, row)
			if jsonOut {
				if err := enc.Encode(row); err != nil {
					fmt.Fprintln(os.Stderr, "experiments:", err)
				}
				continue
			}
			verdict := fmt.Sprintf("%v", row.Corresponds)
			if row.BuildOnly {
				verdict = fmt.Sprintf("build-only (orbits=%d)", row.QuotientStates)
			}
			note := ""
			switch {
			case row.CacheHit:
				note = "  [replayed from store]"
			case row.Seeded:
				note = "  [seeded]"
			}
			fmt.Printf("%-6s n=%-4d states=%-8d corresponds=%-5s max degree=%-3d build=%-12s decide=%s%s\n",
				row.Topology, row.R, row.States, verdict, row.MaxDegree, row.Build.Round(1000), row.Decide.Round(1000), note)
		}
	}
	if failed {
		return 2
	}
	if len(rows) == 0 {
		// Every (topology, size) combination was skipped or empty: a sweep
		// that decided nothing is a usage error, not a success.
		fmt.Fprintln(os.Stderr, "experiments: the sweep decided no correspondences (all sizes invalid for the selected topologies)")
		return 2
	}
	if !jsonOut {
		fmt.Println()
		render(podc.SweepResultsTable(rows))
		if st, ok := session.StoreStats(); ok {
			fmt.Printf("store: %d replayed, %d missed, %d invalid entries recomputed, %d written\n",
				st.Hits, st.Misses, st.Invalid, st.Writes)
		}
	}
	return 0
}
