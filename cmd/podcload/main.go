// Command podcload replays a mixed request battery against a running
// podcserve instance at several fixed concurrency levels and records
// throughput and latency percentiles.  Every response is verified against
// the library: the battery's expected answers are computed in-process with
// pkg/podc, and a response whose canonical form (wall-clock fields dropped)
// is not byte-identical counts as a mismatch.  Any error or mismatch makes
// the run fail with a non-zero exit, so the harness doubles as a
// differential correctness check under load.
//
// Usage:
//
//	podcserve -addr :8080 &
//	podcload -addr http://127.0.0.1:8080 -c 1,4,16 -n 300 -out BENCH_pr10.json
//	podcload -addr http://127.0.0.1:8080 -smoke          # quick CI pass, no file
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/loadgen"
	"repro/pkg/podc"
)

// report is the JSON written to -out (BENCH_pr10.json in CI/bench runs).
type report struct {
	Harness  string                `json:"harness"`
	Target   string                `json:"target"`
	Requests int                   `json:"requests_per_level"`
	Battery  int                   `json:"battery_size"`
	Levels   []loadgen.LevelResult `json:"levels"`
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "base URL of the podcserve instance under test")
	levels := flag.String("c", "1,4,16", "comma-separated concurrency levels")
	n := flag.Int("n", 300, "requests per concurrency level")
	out := flag.String("out", "", "write the JSON report to this file (empty = stdout summary only)")
	smoke := flag.Bool("smoke", false, "quick pass: one small level, ignores -c and -n")
	timeout := flag.Duration("timeout", 10*time.Minute, "overall run deadline")
	flag.Parse()

	if err := run(*addr, *levels, *n, *out, *smoke, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "podcload:", err)
		os.Exit(1)
	}
}

func run(addr, levels string, n int, out string, smoke bool, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	concurrencies, err := parseLevels(levels)
	if err != nil {
		return err
	}
	if smoke {
		concurrencies, n = []int{2}, 24
	}

	// The oracle session computes the expected answers in-process; it never
	// talks to the server, so agreement is a differential result.
	fmt.Fprintf(os.Stderr, "podcload: computing battery expectations from the library...\n")
	oracle := podc.NewSession()
	battery, err := loadgen.Battery(ctx, oracle)
	if err != nil {
		return fmt.Errorf("building battery: %w", err)
	}

	rep := report{
		Harness:  "cmd/podcload",
		Target:   addr,
		Requests: n,
		Battery:  len(battery),
	}
	failed := false
	for _, c := range concurrencies {
		res, err := loadgen.Run(ctx, battery, loadgen.Options{
			BaseURL:     strings.TrimSuffix(addr, "/"),
			Concurrency: c,
			Requests:    n,
		})
		if err != nil {
			return fmt.Errorf("level c=%d: %w", c, err)
		}
		rep.Levels = append(rep.Levels, res)
		fmt.Printf("c=%-3d  %6d req  %8.1f req/s  p50 %7.2fms  p99 %7.2fms  errors %d  mismatches %d\n",
			res.Concurrency, res.Requests, res.ThroughputRPS, res.P50ms, res.P99ms, res.Errors, res.Mismatches)
		if res.Errors > 0 {
			failed = true
			fmt.Fprintf(os.Stderr, "podcload: first error at c=%d: %s\n", c, res.FirstError)
		}
		if res.Mismatches > 0 {
			failed = true
			m := res.FirstMismatch
			fmt.Fprintf(os.Stderr, "podcload: first mismatch at c=%d (%s):\n got: %s\nwant: %s\n",
				c, m.Name, m.Got, m.Want)
		}
	}

	if out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "podcload: wrote %s\n", out)
	}
	if failed {
		return fmt.Errorf("run had errors or verdict mismatches")
	}
	return nil
}

func parseLevels(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		c, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || c < 1 {
			return nil, fmt.Errorf("-c: %q is not a positive integer", f)
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-c: no levels given")
	}
	return out, nil
}
