module smoketest

go 1.24
