// Package smoketest is a tiny standalone module the repolint smoke test
// points the driver at: one goroutine with no exit signal, one clean
// function.
package smoketest

// Fire leaks a goroutine.
func Fire() chan int {
	ch := make(chan int)
	go func() {
		for {
			ch <- 1
		}
	}()
	return ch
}

// Drain is clean: the goroutine ends when the channel closes.
func Drain(ch <-chan int) {
	go func() {
		for range ch {
		}
	}()
}
