// Command repolint runs the repository's own static-analysis suite
// (internal/lint): five AST+types analyzers that enforce the engine's
// determinism, cancellation, lock, pool and goroutine invariants at compile
// time.  It is built exclusively on the standard library.
//
// Usage:
//
//	go run ./cmd/repolint ./...          # whole tree (what CI runs)
//	go run ./cmd/repolint ./internal/ring
//	go run ./cmd/repolint -waivers ./... # list every //lint: waiver
//
// Diagnostics are printed as "file:line:col: analyzer: message", sorted;
// the exit code is 0 when clean, 1 on findings, 2 on usage or load errors.
package main

import (
	"os"

	"repro/internal/lint"
)

func main() {
	os.Exit(lint.Main(os.Args[1:], os.Stdout, os.Stderr))
}
