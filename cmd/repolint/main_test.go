package main

import (
	"regexp"
	"strings"
	"testing"

	"repro/internal/lint"
)

// TestSmoke drives the repolint entry point over the standalone module in
// testdata/mod, asserting the exit code and the file:line:col diagnostic
// format end to end.
func TestSmoke(t *testing.T) {
	t.Chdir("testdata/mod")
	var out, errb strings.Builder
	code := lint.Main([]string{"./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	diagRe := regexp.MustCompile(`(?m)^leak\.go:\d+:\d+: goleak: goroutine has no visible exit signal`)
	if !diagRe.MatchString(out.String()) {
		t.Fatalf("diagnostic format mismatch:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "repolint: 1 finding(s)") {
		t.Fatalf("stderr summary mismatch: %q", errb.String())
	}
}

// TestSmokeWaivers asserts the -waivers listing mode exits 0 and prints
// nothing for a module without //lint: comments.
func TestSmokeWaivers(t *testing.T) {
	t.Chdir("testdata/mod")
	var out, errb strings.Builder
	if code := lint.Main([]string{"-waivers", "./..."}, &out, &errb); code != 0 {
		t.Fatalf("-waivers exit code = %d, want 0\nstderr:\n%s", code, errb.String())
	}
	if strings.TrimSpace(out.String()) != "" {
		t.Fatalf("module has no waivers, but -waivers printed:\n%s", out.String())
	}
}
