// Package repro is a reproduction of Browne, Clarke and Grumberg,
// "Reasoning about Networks with Many Identical Finite State Processes"
// (PODC 1986; Information and Computation 81, 1989), grown into a
// topology-parametric parameterized-verification engine.
//
// The paper's method — model check one small instance of a family of
// identical processes, establish a stuttering correspondence with larger
// instances, transfer every closed restricted ICTL* property by Theorem 5 —
// is implemented end to end and generalised beyond the paper's token ring:
// internal/family factors the topology-specific ingredients (instance
// generator, inductive index relation, cutoff heuristic, specifications)
// into a Topology interface with ring, star, line, binary-tree and 2D-torus
// implementations.
//
// The engines are built to make the paper's anti-state-explosion point at
// machine speed: Kripke structures intern label sets to dense integer ids
// and store transitions in compressed-sparse-row arrays, the instance
// builders explore packed uint64 state codes, and the partition-refinement
// correspondence engine splits word-parallel bitset blocks (DESIGN.md §5
// records the design and the before/after numbers).
//
// The supported entry point is the public API in pkg/podc (see its package
// documentation); the engines live under internal/ — DESIGN.md is the
// architecture map and PAPER_MAP.md traces every definition, theorem and
// figure of the paper to the code implementing it.  The runnable examples
// are under examples/, the command line tools and the HTTP verification
// service under cmd/, and the benchmark harness that regenerates every
// figure and table of the paper in bench_test.go and internal/experiments
// (scripts/bench.sh records the battery as BENCH_pr4.json).
package repro
