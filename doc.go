// Package repro is a reproduction of Browne, Clarke and Grumberg,
// "Reasoning about Networks with Many Identical Finite State Processes"
// (PODC 1986; Information and Computation 81, 1989).
//
// The implementation lives under internal/ (see DESIGN.md for the map), the
// runnable examples under examples/, the command line tools under cmd/, and
// the benchmark harness that regenerates every figure and table of the paper
// in bench_test.go and internal/experiments.
package repro
