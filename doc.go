// Package repro is a reproduction of Browne, Clarke and Grumberg,
// "Reasoning about Networks with Many Identical Finite State Processes"
// (PODC 1986; Information and Computation 81, 1989).
//
// The supported entry point is the public API in pkg/podc (see its package
// documentation); the engines live under internal/ (see DESIGN.md for the
// map).  The runnable examples are under examples/, the command line tools
// and the HTTP verification service under cmd/, and the benchmark harness
// that regenerates every figure and table of the paper in bench_test.go and
// internal/experiments.
package repro
