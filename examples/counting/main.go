// Command counting reproduces Fig. 4.1 of the paper: it shows why the
// indexed logic has to be restricted.  With unrestricted nesting of the
// indexed quantifiers one can write formulas that count the number of
// processes in a network, so no correspondence between differently sized
// networks could possibly preserve all of them.  Formulas in the restricted
// fragment, by contrast, cannot tell the sizes apart.
//
// Run it with:
//
//	go run ./examples/counting
package main

import (
	"context"
	"fmt"
	"log"

	"repro/pkg/podc"
)

func main() {
	ctx := context.Background()
	const maxN = 5
	fmt.Println("Fig. 4.1: each process starts with a_i and may take one step, after which b_i holds forever.")
	fmt.Println()

	// Build each family member once; the verifiers memoise satisfaction
	// sets, so every formula below reuses them.
	verifiers := make([]*podc.Verifier, maxN+1)
	for n := 1; n <= maxN; n++ {
		m, err := podc.CountingStructure(n)
		if err != nil {
			log.Fatal(err)
		}
		v, err := podc.NewVerifier(ctx, m)
		if err != nil {
			log.Fatal(err)
		}
		verifiers[n] = v
	}

	// The nested counting formulas.
	fmt.Println("Nested (unrestricted) counting formulas — truth depends on the number of processes:")
	for k := 1; k <= 4; k++ {
		f := podc.CountingFormula(k)
		fmt.Printf("  depth %d: %s\n    restricted ICTL*? %v\n    ", k, f, f.IsRestricted())
		for n := 1; n <= maxN; n++ {
			holds, err := verifiers[n].Check(ctx, f)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("n=%d:%-6v", n, holds)
		}
		fmt.Println()
	}
	fmt.Println()

	// Why the formula is rejected.
	deep := podc.CountingFormula(2)
	fmt.Println("Why the restriction rejects the depth-2 formula:")
	for _, issue := range deep.RestrictionIssues() {
		fmt.Println("  -", issue)
	}
	fmt.Println()

	// Restricted formulas cannot count.
	fmt.Println("Restricted ICTL* formulas — truth is independent of the number of processes (n >= 2):")
	for _, f := range podc.CountingRestrictedFormulas() {
		fmt.Printf("  %-30s ", f)
		for n := 2; n <= maxN; n++ {
			holds, err := verifiers[n].Check(ctx, f)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("n=%d:%-6v", n, holds)
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("The paper's Section 6 conjecture: k levels of quantifier nesting cannot distinguish")
	fmt.Println("free products with more than k processes — the depth-k formula above flips exactly at n = k.")
}
