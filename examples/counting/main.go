// Command counting reproduces Fig. 4.1 of the paper: it shows why the
// indexed logic has to be restricted.  With unrestricted nesting of the
// indexed quantifiers one can write formulas that count the number of
// processes in a network, so no correspondence between differently sized
// networks could possibly preserve all of them.  Formulas in the restricted
// fragment, by contrast, cannot tell the sizes apart.
//
// Run it with:
//
//	go run ./examples/counting
package main

import (
	"fmt"
	"log"

	"repro/internal/logic"
	"repro/internal/mc"
	"repro/internal/paperfig"
)

func main() {
	const maxN = 5
	fmt.Println("Fig. 4.1: each process starts with a_i and may take one step, after which b_i holds forever.")
	fmt.Println()

	// The nested counting formulas.
	fmt.Println("Nested (unrestricted) counting formulas — truth depends on the number of processes:")
	for k := 1; k <= 4; k++ {
		f := paperfig.Fig41CountingFormula(k)
		fmt.Printf("  depth %d: %s\n    restricted ICTL*? %v\n    ", k, f, logic.IsRestricted(f))
		for n := 1; n <= maxN; n++ {
			m, err := paperfig.Fig41(n)
			if err != nil {
				log.Fatal(err)
			}
			holds, err := mc.New(m).Holds(f)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("n=%d:%-6v", n, holds)
		}
		fmt.Println()
	}
	fmt.Println()

	// Why the formula is rejected.
	deep := paperfig.Fig41CountingFormula(2)
	fmt.Println("Why the restriction rejects the depth-2 formula:")
	for _, v := range logic.CheckRestricted(deep) {
		fmt.Println("  -", v.Error())
	}
	fmt.Println()

	// Restricted formulas cannot count.
	fmt.Println("Restricted ICTL* formulas — truth is independent of the number of processes (n >= 2):")
	for _, f := range paperfig.Fig41RestrictedFormulas() {
		fmt.Printf("  %-30s ", f)
		for n := 2; n <= maxN; n++ {
			m, err := paperfig.Fig41(n)
			if err != nil {
				log.Fatal(err)
			}
			holds, err := mc.New(m).Holds(f)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("n=%d:%-6v", n, holds)
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("The paper's Section 6 conjecture: k levels of quantifier nesting cannot distinguish")
	fmt.Println("free products with more than k processes — the depth-k formula above flips exactly at n = k.")
}
