// Command resourcepool applies the library to a second family of identical
// processes, built with the generic process-network substrate rather than
// the hand-coded ring: n clients compete for a single shared resource that
// is granted nondeterministically to one of the waiting clients and must be
// released before the next grant.  The example demonstrates that the paper's
// methodology — verify a small instance, establish the indexed
// correspondence, conclude for every size — is not specific to the token
// ring.
//
// Run it with:
//
//	go run ./examples/resourcepool
package main

import (
	"context"
	"fmt"
	"log"

	"repro/pkg/podc"
)

// buildPool returns the Kripke structure of the n-client resource pool.
// Each client is idle, waiting or using; any waiting client may be granted
// the resource when it is free, and must release it before the next grant.
func buildPool(n int) (*podc.Structure, error) {
	net := &podc.Network{
		Template: &podc.ProcessTemplate{
			Name:    "client",
			States:  []string{"idle", "waiting", "using"},
			Initial: "idle",
			Labels: map[string][]string{
				"idle":    {"idle"},
				"waiting": {"wait"},
				"using":   {"use"},
			},
		},
		N: n,
		Rules: []podc.NetworkRule{
			{
				Name:  "request",
				Guard: func(v podc.NetworkView, i int) bool { return v.Local(i) == "idle" },
				Apply: func(v podc.NetworkView, i int) podc.NetworkUpdate {
					return podc.NetworkUpdate{Locals: map[int]string{i: "waiting"}}
				},
			},
			{
				Name: "grant",
				Guard: func(v podc.NetworkView, i int) bool {
					return v.Local(i) == "waiting" && v.CountLocal("using") == 0
				},
				Apply: func(v podc.NetworkView, i int) podc.NetworkUpdate {
					return podc.NetworkUpdate{Locals: map[int]string{i: "using"}}
				},
			},
			{
				Name:  "release",
				Guard: func(v podc.NetworkView, i int) bool { return v.Local(i) == "using" },
				Apply: func(v podc.NetworkView, i int) podc.NetworkUpdate {
					return podc.NetworkUpdate{Locals: map[int]string{i: "idle"}}
				},
			},
		},
	}
	return net.Build(fmt.Sprintf("pool[%d]", n))
}

func main() {
	ctx := context.Background()
	specs := []podc.Spec{
		{Name: "mutual-exclusion", Formula: podc.MustParseFormula("forall i . AG (use[i] -> (one use))")},
		{Name: "use-only-after-waiting", Formula: podc.MustParseFormula("forall i . A (!use[i] W wait[i])")},
		{Name: "requests-are-stable", Formula: podc.MustParseFormula("forall i . AG (wait[i] -> A[wait[i] W use[i]])")},
		{Name: "service-always-possible", Formula: podc.MustParseFormula("forall i . AG (wait[i] -> EF use[i])")},
	}
	for _, s := range specs {
		fmt.Printf("spec %-24s restricted ICTL*: %v\n", s.Name, s.Formula.IsRestricted())
	}
	fmt.Println()

	family := &podc.FamilyFunc{
		FamilyName: "resource-pool",
		BuildFunc:  buildPool,
		Indices: func(small, n int) []podc.IndexPair {
			// All clients are fully interchangeable, so pair equal positions
			// first and fold the tail onto the last small client.
			var out []podc.IndexPair
			for i := 1; i <= small; i++ {
				out = append(out, podc.IndexPair{I: i, I2: i})
			}
			for j := small + 1; j <= n; j++ {
				out = append(out, podc.IndexPair{I: small, I2: j})
			}
			return out
		},
		AtomNames: []string{"use"},
	}

	// Find the smallest cutoff from which every larger pool corresponds.
	const largest = 6
	cutoff := -1
	for small := 1; small <= 4 && cutoff < 0; small++ {
		report, err := podc.VerifyFamily(ctx, family, specs,
			podc.WithSmallSize(small),
			podc.WithCorrespondenceSizes(rangeInts(small+1, largest)...),
		)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- trying cutoff %d ---\n%s\n", small, report.Summary())
		if len(report.VerifiedSizes()) == largest-small && report.AllHold() {
			cutoff = small
		}
	}
	if cutoff < 0 {
		fmt.Println("no cutoff up to 4 represents the whole family for the sizes checked")
		return
	}
	fmt.Printf("=> the %d-client pool represents every pool checked (up to %d clients);\n", cutoff, largest)
	fmt.Println("   by Theorem 5 the four specifications hold for those sizes as well.")
}

func rangeInts(lo, hi int) []int {
	var out []int
	for i := lo; i <= hi; i++ {
		out = append(out, i)
	}
	return out
}
