// Command tokenring reproduces the paper's Section 5 case study end to end
// through the public API:
//
//  1. run the paper's verification methodology for the token-ring family
//     (model check the cutoff instance, establish the correspondences,
//     transfer by Theorem 5) with podc.VerifyFamily,
//  2. reproduce both halves of the reproduction finding (the two-process
//     cutoff fails; the three-process cutoff works), and
//  3. check the Appendix's hand-built relation locally at a 1000-process
//     ring — a structure with 1000·2^1000 states that is never built.
//
// Run it with:
//
//	go run ./examples/tokenring
package main

import (
	"context"
	"fmt"
	"log"

	"repro/pkg/podc"
)

func main() {
	ctx := context.Background()

	// Step 1: the paper's workflow for the whole family, starting from the
	// corrected cutoff instance (three processes).
	specs := append(podc.RingInvariants(), podc.RingProperties()...)
	report, err := podc.VerifyFamily(ctx, podc.TokenRingFamily(), specs,
		podc.WithSmallSize(podc.RingCutoffSize),
		podc.WithCorrespondenceSizes(4, 5, 6, 7),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.Summary())
	fmt.Println()

	// Step 2: the reproduction finding about the paper's own cutoff of two.
	two, err := podc.BuildRing(2)
	if err != nil {
		log.Fatal(err)
	}
	three, err := podc.BuildRing(3)
	if err != nil {
		log.Fatal(err)
	}
	res, err := podc.RingCorrespondence(ctx, two, three)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Paper's claim: M_2 indexed-corresponds to M_3?  decision procedure says: %v\n", res.Corresponds())

	chi := podc.RingDistinguishingFormula()
	v2, err := podc.NewVerifier(ctx, two.Structure())
	if err != nil {
		log.Fatal(err)
	}
	h2, err := v2.Check(ctx, chi)
	if err != nil {
		log.Fatal(err)
	}
	v3, err := podc.NewVerifier(ctx, three.Structure())
	if err != nil {
		log.Fatal(err)
	}
	h3, err := v3.Check(ctx, chi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Witnessing restricted ICTL* formula:\n  %s\n  holds on M_2: %v   holds on M_3: %v\n\n", chi, h2, h3)

	// Step 3: local clause checking of the Appendix relation at r = 1000.
	const r = 1000
	fmt.Printf("Checking the Section 5 / Appendix relation locally at a %d-process ring (never built):\n", r)
	for _, variant := range []podc.RingRelationVariant{podc.RingPaperRelation, podc.RingCorrectedRelation} {
		rep, err := podc.RingLocalCheck(ctx, variant, r, 15, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s relation: %d clause violations across %d sampled states\n",
			rep.Variant, rep.Violations, rep.SampledStates)
	}
	fmt.Println("\n=> the Appendix relation fails even at r=1000, while the three-process cutoff established")
	fmt.Printf("   above transfers the four Section 5 properties to every ring size, including %d.\n", r)
}
