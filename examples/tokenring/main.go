// Command tokenring reproduces the paper's Section 5 case study end to end:
//
//  1. build the global state graph of the token-ring mutual exclusion
//     protocol for small ring sizes,
//  2. model check the Section 5 invariants and the four ICTL* properties,
//  3. run the correspondence decision procedure between small and large
//     instances, reproducing both halves of the reproduction finding (the
//     two-process cutoff fails; the three-process cutoff works), and
//  4. check the Appendix's hand-built relation locally at a 1000-process
//     ring — a structure with 1000·2^1000 states that is never built.
//
// Run it with:
//
//	go run ./examples/tokenring
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/bisim"
	"repro/internal/core"
	"repro/internal/kripke"
	"repro/internal/mc"
	"repro/internal/ring"
)

func main() {
	// Step 1+2: the paper's workflow through the core.Verifier, starting from
	// the corrected cutoff instance (three processes).
	family := &core.FamilyFunc{
		FamilyName: "token-ring",
		Build: func(n int) (*kripke.Structure, error) {
			inst, err := ring.Build(n)
			if err != nil {
				return nil, err
			}
			return inst.M, nil
		},
		Indices: func(small, n int) []bisim.IndexPair { return ring.CutoffIndexRelation(small, n) },
		Ones:    []string{ring.PropToken},
	}
	var specs []core.Spec
	for _, nf := range append(ring.Invariants(), ring.Properties()...) {
		specs = append(specs, core.Spec{Name: nf.Name, Formula: nf.Formula})
	}
	verifier, err := core.NewVerifier(family, core.Options{
		SmallSize:           ring.CutoffSize,
		CorrespondenceSizes: []int{4, 5, 6, 7},
	})
	if err != nil {
		log.Fatal(err)
	}
	report, err := verifier.Run(specs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.Summary())
	fmt.Println()

	// Step 3: the reproduction finding about the paper's own cutoff of two.
	two, err := ring.Build(2)
	if err != nil {
		log.Fatal(err)
	}
	three, err := ring.Build(3)
	if err != nil {
		log.Fatal(err)
	}
	opts := bisim.Options{OneProps: []string{ring.PropToken}, ReachableOnly: true}
	res, err := bisim.IndexedCompute(two.M, three.M, ring.IndexRelation(2, 3), opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Paper's claim: M_2 indexed-corresponds to M_3?  decision procedure says: %v\n", res.Corresponds())
	chi := ring.DistinguishingFormula()
	h2, err := mc.New(two.M).Holds(chi)
	if err != nil {
		log.Fatal(err)
	}
	h3, err := mc.New(three.M).Holds(chi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Witnessing restricted ICTL* formula:\n  %s\n  holds on M_2: %v   holds on M_3: %v\n\n", chi, h2, h3)

	// Step 4: local clause checking of the Appendix relation at r = 1000.
	const r = 1000
	fmt.Printf("Checking the Section 5 / Appendix relation locally at a %d-process ring (never built):\n", r)
	rng := rand.New(rand.NewSource(1))
	next := func(n int) int { return rng.Intn(n) }
	for _, variant := range []ring.RelationVariant{ring.PaperRelation, ring.CorrectedRelation} {
		lc, err := ring.NewLocalChecker(variant, two, r)
		if err != nil {
			log.Fatal(err)
		}
		violations := 0
		samples := 15
		for i := 0; i < samples; i++ {
			g := ring.RandomReachableState(r, next)
			violations += len(lc.CheckState(g, 1, 1))
			violations += len(lc.CheckState(g, 2, r/2))
		}
		fmt.Printf("  %-9s relation: %d clause violations across %d sampled states\n", variant, violations, samples)
	}
	fmt.Println("\n=> the Appendix relation fails even at r=1000, while the three-process cutoff established")
	fmt.Printf("   above transfers the four Section 5 properties to every ring size, including %d.\n", r)
}
