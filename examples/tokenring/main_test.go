package main

import (
	"os"
	"testing"
)

// TestMainSmoke runs the example end to end (stdout routed to /dev/null),
// so CI compiles *and* executes it; any internal error exits through
// log.Fatal and fails the test binary.
func TestMainSmoke(t *testing.T) {
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()
	main()
}
