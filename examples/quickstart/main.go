// Command quickstart is the smallest end-to-end tour of the public API:
// build a Kripke structure, model check CTL and CTL* formulas against it,
// obtain a counterexample, and decide whether two structures satisfy the
// same CTL* (no nexttime) formulas via the correspondence relation of
// Browne, Clarke and Grumberg.
//
// Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/pkg/podc"
)

func main() {
	ctx := context.Background()

	// A tiny traffic light: green -> yellow -> red -> green, with a pedestrian
	// request that latches until served.
	b := podc.NewBuilder("traffic-light")
	green := b.AddState(podc.P("green"))
	yellow := b.AddState(podc.P("yellow"))
	red := b.AddState(podc.P("red"), podc.P("walk"))
	for _, e := range [][2]podc.State{{green, yellow}, {yellow, red}, {red, green}, {green, green}} {
		if err := b.AddTransition(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}
	if err := b.SetInitial(green); err != nil {
		log.Fatal(err)
	}
	m, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(m.Summary())

	verifier, err := podc.NewVerifier(ctx, m)
	if err != nil {
		log.Fatal(err)
	}
	for _, text := range []string{
		"AG (yellow -> AX red)",     // CTL with nexttime
		"AG (red -> walk)",          // a simple invariant
		"AG EF green",               // reset property
		"A (G (red -> F green))",    // a CTL* path formula
		"E ((G !red) & (F yellow))", // another CTL* path formula
		"AF red",                    // fails: the light may idle on green forever
	} {
		f := podc.MustParseFormula(text)
		holds, err := verifier.Check(ctx, f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-32s : %v\n", text, holds)
	}

	// Counterexample for the failing property.
	cx, err := verifier.Counterexample(ctx, podc.MustParseFormula("AF red"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("counterexample for AF red:", cx)

	// Correspondence: a stuttered copy of the light (two yellow phases)
	// satisfies exactly the same CTL* formulas without nexttime.
	b2 := podc.NewBuilder("slow-light")
	g2 := b2.AddState(podc.P("green"))
	y2a := b2.AddState(podc.P("yellow"))
	y2b := b2.AddState(podc.P("yellow"))
	r2 := b2.AddState(podc.P("red"), podc.P("walk"))
	for _, e := range [][2]podc.State{{g2, y2a}, {y2a, y2b}, {y2b, r2}, {r2, g2}, {g2, g2}} {
		if err := b2.AddTransition(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}
	if err := b2.SetInitial(g2); err != nil {
		log.Fatal(err)
	}
	slow, err := b2.Build()
	if err != nil {
		log.Fatal(err)
	}
	corr, err := podc.Correspond(ctx, m, slow)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traffic-light and slow-light correspond: %v (max stuttering degree %d)\n",
		corr.Corresponds(), corr.MaxDegree())
	fmt.Println("=> by the correspondence theorem they satisfy the same CTL* formulas without X;")
	fmt.Println("   the nexttime formula AG (yellow -> AX red) is exactly the kind of property that is NOT preserved.")
}
