// Command quickstart is the smallest end-to-end tour of the library: build a
// Kripke structure, model check CTL and CTL* formulas against it, obtain a
// counterexample, and decide whether two structures satisfy the same CTL*
// (no nexttime) formulas via the correspondence relation of Browne, Clarke
// and Grumberg.
//
// Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/bisim"
	"repro/internal/kripke"
	"repro/internal/logic"
	"repro/internal/mc"
)

func main() {
	// A tiny traffic light: green -> yellow -> red -> green, with a pedestrian
	// request that latches until served.
	b := kripke.NewBuilder("traffic-light")
	green := b.AddState(kripke.P("green"))
	yellow := b.AddState(kripke.P("yellow"))
	red := b.AddState(kripke.P("red"), kripke.P("walk"))
	for _, e := range [][2]kripke.State{{green, yellow}, {yellow, red}, {red, green}, {green, green}} {
		if err := b.AddTransition(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}
	if err := b.SetInitial(green); err != nil {
		log.Fatal(err)
	}
	m, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(m.ComputeStats())

	checker := mc.New(m)
	for _, text := range []string{
		"AG (yellow -> AX red)",     // CTL with nexttime
		"AG (red -> walk)",          // a simple invariant
		"AG EF green",               // reset property
		"A (G (red -> F green))",    // a CTL* path formula
		"E ((G !red) & (F yellow))", // another CTL* path formula
		"AF red",                    // fails: the light may idle on green forever
	} {
		f := logic.MustParse(text)
		holds, err := checker.Holds(f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-32s : %v\n", text, holds)
	}

	// Counterexample for the failing property.
	cx, err := checker.Counterexample(logic.MustParse("AF red"), m.Initial())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("counterexample for AF red:", cx.Format(m))

	// Correspondence: a stuttered copy of the light (two yellow phases)
	// satisfies exactly the same CTL* formulas without nexttime.
	b2 := kripke.NewBuilder("slow-light")
	g2 := b2.AddState(kripke.P("green"))
	y2a := b2.AddState(kripke.P("yellow"))
	y2b := b2.AddState(kripke.P("yellow"))
	r2 := b2.AddState(kripke.P("red"), kripke.P("walk"))
	for _, e := range [][2]kripke.State{{g2, y2a}, {y2a, y2b}, {y2b, r2}, {r2, g2}, {g2, g2}} {
		if err := b2.AddTransition(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}
	if err := b2.SetInitial(g2); err != nil {
		log.Fatal(err)
	}
	slow, err := b2.Build()
	if err != nil {
		log.Fatal(err)
	}
	res, err := bisim.Compute(m, slow, bisim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traffic-light and slow-light correspond: %v (max stuttering degree %d)\n",
		res.Corresponds(), res.Relation.MaxDegree())
	fmt.Println("=> by the correspondence theorem they satisfy the same CTL* formulas without X;")
	fmt.Println("   the nexttime formula AG (yellow -> AX red) is exactly the kind of property that is NOT preserved.")
}
